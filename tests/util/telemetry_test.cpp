// util/telemetry coverage: handle semantics (incl. the inert default),
// histogram bucket-edge placement, snapshot JSON shape, merge rules, and —
// the property the whole design leans on — byte-identical snapshots no
// matter how the increments were spread across WorkerPool threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/support.h"
#include "util/telemetry.h"
#include "util/worker_pool.h"

namespace nwade::util::telemetry {
namespace {

TEST(Telemetry, DefaultHandlesAreInertNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  c.inc();          // must not crash
  g.set(7);
  g.max_of(9);
  h.observe(3);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(Telemetry, CounterAccumulatesAndResets) {
  Registry r;
  Counter c = r.counter("t.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  // Same name -> same cell.
  EXPECT_EQ(r.counter("t.counter").value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Telemetry, GaugeIsLastWriterWinsAndMaxOfRatchets) {
  Registry r;
  Gauge g = r.gauge("t.gauge");
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  g.max_of(2);
  EXPECT_EQ(g.value(), 3);
  g.max_of(8);
  EXPECT_EQ(g.value(), 8);
}

TEST(Telemetry, ExponentialEdgesDoubleFromZero) {
  const HistogramBuckets b = HistogramBuckets::exponential_ms(8);
  EXPECT_EQ(b.upper_edges, (std::vector<std::int64_t>{0, 1, 2, 4, 8}));
}

TEST(Telemetry, HistogramPlacesObservationsOnBucketEdges) {
  Registry r;
  Histogram h = r.histogram("t.hist", HistogramBuckets::exponential_ms(8));
  // Edges 0,1,2,4,8 (+overflow). A value lands in the first bucket whose
  // upper edge is >= value; above the last edge it lands in overflow.
  h.observe(0);   // bucket 0 (edge 0)
  h.observe(1);   // bucket 1 (edge 1)
  h.observe(2);   // bucket 2 (edge 2)
  h.observe(3);   // bucket 3 (edge 4)
  h.observe(4);   // bucket 3 (edge 4)
  h.observe(5);   // bucket 4 (edge 8)
  h.observe(8);   // bucket 4 (edge 8)
  h.observe(9);   // overflow
  h.observe(1000);  // overflow
  EXPECT_EQ(h.count(), 9);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 5 + 8 + 9 + 1000);
  const MetricsSnapshot snap = r.snapshot();
  const auto& data = snap.histograms.at("t.hist");
  EXPECT_EQ(data.bucket_counts,
            (std::vector<std::int64_t>{1, 1, 1, 2, 2, 2}));
  EXPECT_EQ(data.count, 9);
}

TEST(Telemetry, SnapshotJsonIsWellFormedAndSorted) {
  Registry r;
  r.counter("b.second").inc(2);
  r.counter("a.first").inc(1);
  r.gauge("z.gauge").set(-5);
  r.histogram("h.lat", HistogramBuckets::exponential_ms(4)).observe(3);
  const MetricsSnapshot snap = r.snapshot();
  const std::string pretty = snap.json();
  const std::string compact = snap.json_compact();
  EXPECT_TRUE(bench::json_well_formed(pretty)) << pretty;
  EXPECT_TRUE(bench::json_well_formed(compact)) << compact;
  // Sorted keys: "a.first" renders before "b.second".
  EXPECT_LT(compact.find("a.first"), compact.find("b.second"));
  EXPECT_NE(compact.find("\"z.gauge\": -5"), std::string::npos) << compact;
  // One line only.
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(Telemetry, MergeAddsCountersAndHistogramsGaugesLastWin) {
  Registry a;
  a.counter("c").inc(3);
  a.gauge("g").set(1);
  a.histogram("h", HistogramBuckets::exponential_ms(4)).observe(2);
  Registry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(9);
  b.histogram("h", HistogramBuckets::exponential_ms(4)).observe(2);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7);
  EXPECT_EQ(merged.counters.at("only_b"), 1);
  EXPECT_EQ(merged.gauges.at("g"), 9);
  EXPECT_EQ(merged.histograms.at("h").count, 2);
  EXPECT_EQ(merged.histograms.at("h").sum, 4);
}

TEST(Telemetry, SnapshotIsByteIdenticalAcrossPoolSizes) {
  // The determinism contract: integer metrics + commutative shard merge =>
  // the snapshot is a pure function of the increments, not of which thread
  // performed them. Chaos-labeled so the TSan tree vets the sharded cells.
  const auto run = [](int threads) {
    Registry r;
    Counter c = r.counter("work.items");
    Histogram h =
        r.histogram("work.cost_ms", HistogramBuckets::exponential_ms(64));
    WorkerPool pool(threads);
    pool.for_each(10'000, [&](std::size_t i) {
      c.inc();
      h.observe(static_cast<std::int64_t>(i % 100));
    });
    return r.snapshot().json();
  };
  const std::string inline_run = run(1);
  EXPECT_EQ(inline_run, run(4));
  EXPECT_EQ(inline_run, run(8));
}

TEST(Telemetry, RegistryResetZeroesValuesButKeepsHandles) {
  Registry r;
  Counter c = r.counter("c");
  Gauge g = r.gauge("g");
  Histogram h = r.histogram("h", HistogramBuckets::exponential_ms(4));
  c.inc(5);
  g.set(5);
  h.observe(1);
  r.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.inc();  // handle still wired to the same cell
  EXPECT_EQ(r.counter("c").value(), 1);
}

}  // namespace
}  // namespace nwade::util::telemetry
