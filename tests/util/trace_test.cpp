// util/trace coverage: the enabled/active bookkeeping, event recording, the
// Chrome trace_event and JSONL exports (well-formedness + field scaling),
// and the include_wall=false determinism contract.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bench/support.h"
#include "util/trace.h"

namespace nwade::util::trace {
namespace {

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.instant("cat", "name", 100);
  t.complete("cat", "span", 100, 200);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, ActiveCountFollowsEnabledTracers) {
  ASSERT_FALSE(tracing_active()) << "another test leaked an enabled tracer";
  {
    Tracer a;
    a.set_enabled(true);
    EXPECT_TRUE(tracing_active());
    a.set_enabled(true);  // idempotent: must not double-count
    Tracer b;
    b.set_enabled(true);
    a.set_enabled(false);
    EXPECT_TRUE(tracing_active()) << "b is still enabled";
    // b's destructor must release its slot.
  }
  EXPECT_FALSE(tracing_active());
}

TEST(Trace, RecordsInstantsAndSpansInOrder) {
  Tracer t;
  t.set_enabled(true);
  t.instant("nwade", "incident_report", 1500, "vehicle", 7);
  t.complete("aim", "process_window", 2000, 2100, 12.5, "plans", 3);
  const std::vector<Event> events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "incident_report");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].ts_ms, 1500);
  EXPECT_EQ(events[0].arg_value, 7);
  EXPECT_STREQ(events[1].cat, "aim");
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].ts_ms, 2000);
  EXPECT_EQ(events[1].dur_ms, 100);
  EXPECT_DOUBLE_EQ(events[1].wall_us, 12.5);

  std::vector<Event> taken = t.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(t.size(), 0u) << "take() drains but keeps recording";
  t.instant("x", "y", 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Trace, ChromeJsonIsWellFormedWithMicrosecondTimestamps) {
  Tracer t;
  t.set_enabled(true);
  t.instant("nwade", "verify_round_start", 1500);
  t.complete("sim", "phase.physics", 2000, 2000, 42.0, "items", 9);
  const std::string json = t.chrome_json();
  EXPECT_TRUE(bench::json_well_formed(json)) << json;
  // Sim ms scale to trace_event µs.
  EXPECT_NE(json.find("\"ts\": 1500000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\": 2000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(json.find("\"items\": 9"), std::string::npos);
}

TEST(Trace, JsonlEmitsOneWellFormedObjectPerLine) {
  Tracer t;
  t.set_enabled(true);
  t.instant("net", "packet_drop", 100, "to", 4);
  t.complete("chain", "verify_block", 200, 200, 3.0);
  const std::string jsonl = t.jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_TRUE(bench::json_well_formed(line)) << line;
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(Trace, IncludeWallFalseStripsTheOnlyNondeterministicField) {
  // Two tracers record the same sim-time events with different wall-clock
  // profiles; the stripped exports must be byte-identical.
  struct Exports {
    std::string chrome_wall, chrome_stripped, jsonl_stripped;
  };
  const auto record = [](double wall_us) {
    Tracer t;
    t.set_enabled(true);
    t.instant("nwade", "degraded_enter", 900, "vehicle", 2);
    t.complete("aim", "process_window", 1000, 1200, wall_us, "plans", 5);
    return Exports{t.chrome_json(true), t.chrome_json(false), t.jsonl(false)};
  };
  const Exports a = record(17.0);
  const Exports b = record(3900.5);
  EXPECT_NE(a.chrome_wall, b.chrome_wall);
  EXPECT_EQ(a.chrome_stripped, b.chrome_stripped);
  EXPECT_EQ(a.jsonl_stripped, b.jsonl_stripped);
  EXPECT_EQ(a.chrome_stripped.find("wall_us"), std::string::npos);
}

TEST(Trace, MultiStreamExportLabelsEachPid) {
  Tracer a;
  a.set_enabled(true);
  a.instant("sim", "spawn", 10);
  Tracer b;
  b.set_enabled(true);
  b.complete("sim", "phase.watch", 20, 20, -1.0);
  const std::string json = chrome_trace_json({a.events(), b.events()},
                                             {"cell-a", "cell-b"}, false);
  EXPECT_TRUE(bench::json_well_formed(json)) << json;
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("cell-a"), std::string::npos);
  EXPECT_NE(json.find("cell-b"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);

  const std::string jsonl = jsonl_trace({a.events(), b.events()}, false);
  EXPECT_NE(jsonl.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"pid\": 1"), std::string::npos);
}

TEST(Trace, ConcurrentAppendsAreSafeAndLosslessWhenEnabled) {
  // Process-scoped tracers may be appended from several threads; the mutex
  // keeps that TSan-clean (the per-World tracers are single-threaded).
  Tracer t;
  t.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, i] {
      for (int e = 0; e < kEvents; ++e) {
        t.instant("chaos", "tick", e, "thread", i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kThreads * kEvents));
}

}  // namespace
}  // namespace nwade::util::trace
