// Poisson arrival generation: rates, determinism, turn split.
#include "traffic/arrivals.h"

#include <gtest/gtest.h>

#include <map>

namespace nwade::traffic {
namespace {

Intersection cross4() {
  IntersectionConfig cfg;
  cfg.kind = IntersectionKind::kCross4;
  return Intersection::build(cfg);
}

TEST(Arrivals, RateMatchesDemand) {
  const auto ix = cross4();
  for (double vpm : {20.0, 80.0, 120.0}) {
    ArrivalGenerator gen(ix, vpm, Rng(1));
    const auto arrivals = gen.generate(10 * 60 * 1000);  // 10 minutes
    const double expected = vpm * 10;
    EXPECT_NEAR(static_cast<double>(arrivals.size()), expected, expected * 0.15)
        << "vpm " << vpm;
  }
}

TEST(Arrivals, SortedByTimeWithinHorizon) {
  const auto ix = cross4();
  ArrivalGenerator gen(ix, 80, Rng(2));
  const auto arrivals = gen.generate(60000);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].time, arrivals[i].time);
  }
  EXPECT_LT(arrivals.back().time, 60000);
  EXPECT_GE(arrivals.front().time, 0);
}

TEST(Arrivals, DeterministicForSameSeed) {
  const auto ix = cross4();
  const auto a = ArrivalGenerator(ix, 80, Rng(3)).generate(60000);
  const auto b = ArrivalGenerator(ix, 80, Rng(3)).generate(60000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].route_id, b[i].route_id);
  }
}

TEST(Arrivals, TurnSplitApproximates25_50_25) {
  const auto ix = cross4();
  ArrivalGenerator gen(ix, 120, Rng(4));
  const auto arrivals = gen.generate(30 * 60 * 1000);
  std::map<Turn, int> counts;
  for (const auto& a : arrivals) counts[ix.route(a.route_id).turn]++;
  const double total = static_cast<double>(arrivals.size());
  EXPECT_NEAR(counts[Turn::kLeft] / total, 0.25, 0.04);
  EXPECT_NEAR(counts[Turn::kStraight] / total, 0.50, 0.04);
  EXPECT_NEAR(counts[Turn::kRight] / total, 0.25, 0.04);
}

TEST(Arrivals, AllLegsUsed) {
  const auto ix = cross4();
  ArrivalGenerator gen(ix, 80, Rng(5));
  const auto arrivals = gen.generate(5 * 60 * 1000);
  std::map<int, int> per_leg;
  for (const auto& a : arrivals) per_leg[ix.route(a.route_id).entry_leg]++;
  EXPECT_EQ(per_leg.size(), 4u);
  // Uniform across legs, roughly.
  for (const auto& [leg, count] : per_leg) {
    EXPECT_NEAR(count, static_cast<int>(arrivals.size()) / 4,
                static_cast<int>(arrivals.size()) / 10)
        << "leg " << leg;
  }
}

TEST(Arrivals, InitialSpeedWithinLimits) {
  const auto ix = cross4();
  ArrivalGenerator gen(ix, 80, Rng(6));
  for (const auto& a : gen.generate(60000)) {
    EXPECT_GT(a.initial_speed_mps, 0);
    EXPECT_LE(a.initial_speed_mps, ix.config().limits.speed_limit_mps + 1e-9);
  }
}

}  // namespace
}  // namespace nwade::traffic
