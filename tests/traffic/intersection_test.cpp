// Intersection builders: structural invariants for all five layouts, plus
// layout-specific properties (CFI removes the core left-vs-opposing-through
// conflict; DDI crossovers conflict; roundabout serializes the ring).
#include "traffic/intersection.h"

#include <gtest/gtest.h>

#include <set>

namespace nwade::traffic {
namespace {

IntersectionConfig config_for(IntersectionKind kind) {
  IntersectionConfig cfg;
  cfg.kind = kind;
  return cfg;
}

class AllKindsTest : public ::testing::TestWithParam<IntersectionKind> {
 protected:
  Intersection ix_ = Intersection::build(config_for(GetParam()));
};

TEST_P(AllKindsTest, HasRoutesAndLegs) {
  EXPECT_GT(ix_.leg_count(), 2);
  EXPECT_FALSE(ix_.routes().empty());
  // Every leg originates at least two routes.
  for (int leg = 0; leg < ix_.leg_count(); ++leg) {
    EXPECT_GE(ix_.routes_from_leg(leg).size(), 2u) << "leg " << leg;
  }
}

TEST_P(AllKindsTest, RouteIdsAreDense) {
  for (std::size_t i = 0; i < ix_.routes().size(); ++i) {
    EXPECT_EQ(ix_.routes()[i].id, static_cast<int>(i));
  }
}

TEST_P(AllKindsTest, RoutePathsAreWellFormed) {
  const auto& cfg = ix_.config();
  for (const Route& r : ix_.routes()) {
    EXPECT_FALSE(r.path.empty()) << "route " << r.id;
    EXPECT_GT(r.core_end, r.core_begin) << "route " << r.id;
    EXPECT_LE(r.core_end, r.path.length() + 1e-6) << "route " << r.id;
    // Approach piece has the configured length.
    EXPECT_NEAR(r.core_begin, cfg.approach_length_m, 1e-6) << "route " << r.id;
    EXPECT_NE(r.entry_leg, r.exit_leg) << "route " << r.id;
  }
}

TEST_P(AllKindsTest, ConflictZonesExist) {
  // Any real intersection has conflicting movements.
  EXPECT_FALSE(ix_.zones().empty());
}

TEST_P(AllKindsTest, ZoneWindowsLieInsideCores) {
  for (const Zone& z : ix_.zones()) {
    const Route& a = ix_.route(z.route_a);
    const Route& b = ix_.route(z.route_b);
    EXPECT_GE(z.a_begin, a.core_begin - 1e-6);
    EXPECT_LE(z.a_end, a.core_end + 1e-6);
    EXPECT_GE(z.b_begin, b.core_begin - 1e-6);
    EXPECT_LE(z.b_end, b.core_end + 1e-6);
    EXPECT_LE(z.a_begin, z.a_end);
    EXPECT_LE(z.b_begin, z.b_end);
  }
}

TEST_P(AllKindsTest, ZoneRefsMatchZones) {
  std::size_t ref_count = 0;
  for (const Route& r : ix_.routes()) ref_count += ix_.zones_for(r.id).size();
  EXPECT_EQ(ref_count, 2 * ix_.zones().size());
  for (const Route& r : ix_.routes()) {
    for (const ZoneRef& ref : ix_.zones_for(r.id)) {
      const Zone& z = ix_.zones()[static_cast<std::size_t>(ref.zone_id)];
      EXPECT_TRUE(z.route_a == r.id || z.route_b == r.id);
      if (z.route_a == r.id) {
        EXPECT_DOUBLE_EQ(ref.begin, z.a_begin);
      } else {
        EXPECT_DOUBLE_EQ(ref.begin, z.b_begin);
      }
    }
  }
}

TEST_P(AllKindsTest, TurnWeightsSumToOne) {
  for (int leg = 0; leg < ix_.leg_count(); ++leg) {
    const auto weights = ix_.turn_weights(leg);
    EXPECT_EQ(weights.size(), ix_.routes_from_leg(leg).size());
    double total = 0;
    for (double w : weights) {
      EXPECT_GT(w, 0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(AllKindsTest, ConflictsAreGeometricallyReal) {
  // Re-check a sample of zones: the two paths really do come close there.
  const auto& zones = ix_.zones();
  for (std::size_t i = 0; i < zones.size(); i += std::max<std::size_t>(1, zones.size() / 10)) {
    const Zone& z = zones[i];
    const Route& a = ix_.route(z.route_a);
    const Route& b = ix_.route(z.route_b);
    const geom::Vec2 pa = a.path.point_at((z.a_begin + z.a_end) / 2);
    const auto [dist, sb] = b.path.project(pa);
    EXPECT_LE(dist, ix_.config().conflict_clearance_m + 1.5)
        << "zone " << z.id << " routes " << z.route_a << "," << z.route_b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllKindsTest, ::testing::ValuesIn(kAllIntersectionKinds),
    [](const ::testing::TestParamInfo<IntersectionKind>& info) {
      switch (info.param) {
        case IntersectionKind::kRoundabout3: return "Roundabout3";
        case IntersectionKind::kCross4: return "Cross4";
        case IntersectionKind::kIrregular5: return "Irregular5";
        case IntersectionKind::kCfi4: return "Cfi4";
        case IntersectionKind::kDdi4: return "Ddi4";
      }
      return "Unknown";
    });

// --- Layout-specific structure ------------------------------------------------

TEST(Cross4, HasTwelveRoutes) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kCross4));
  EXPECT_EQ(ix.routes().size(), 12u);
  // Each leg: exactly one left, straight, right.
  for (int leg = 0; leg < 4; ++leg) {
    std::multiset<Turn> turns;
    for (int id : ix.routes_from_leg(leg)) turns.insert(ix.route(id).turn);
    EXPECT_EQ(turns.count(Turn::kLeft), 1u);
    EXPECT_EQ(turns.count(Turn::kStraight), 1u);
    EXPECT_EQ(turns.count(Turn::kRight), 1u);
  }
}

TEST(Cross4, LeftConflictsWithOpposingThrough) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kCross4));
  // Find the left from leg 0 and the straight from leg 2 (opposing).
  int left0 = -1, straight2 = -1;
  for (const Route& r : ix.routes()) {
    if (r.entry_leg == 0 && r.turn == Turn::kLeft) left0 = r.id;
    if (r.entry_leg == 2 && r.turn == Turn::kStraight) straight2 = r.id;
  }
  ASSERT_GE(left0, 0);
  ASSERT_GE(straight2, 0);
  bool found = false;
  for (const Zone& z : ix.zones()) {
    if ((z.route_a == left0 && z.route_b == straight2) ||
        (z.route_a == straight2 && z.route_b == left0)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "4-way cross must have the classic left-vs-through conflict";
}

TEST(Cross4, RightTurnsFromAdjacentLegsDontConflict) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kCross4));
  int right0 = -1, right2 = -1;
  for (const Route& r : ix.routes()) {
    if (r.entry_leg == 0 && r.turn == Turn::kRight) right0 = r.id;
    if (r.entry_leg == 2 && r.turn == Turn::kRight) right2 = r.id;
  }
  for (const Zone& z : ix.zones()) {
    EXPECT_FALSE((z.route_a == right0 && z.route_b == right2) ||
                 (z.route_a == right2 && z.route_b == right0))
        << "opposite right turns should not conflict";
  }
}

TEST(Cfi4, CoreLeftVsOpposingThroughConflictRemoved) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kCfi4));
  int left0 = -1, straight2 = -1;
  for (const Route& r : ix.routes()) {
    if (r.entry_leg == 0 && r.turn == Turn::kLeft) left0 = r.id;
    if (r.entry_leg == 2 && r.turn == Turn::kStraight) straight2 = r.id;
  }
  ASSERT_GE(left0, 0);
  ASSERT_GE(straight2, 0);
  // The pair may still conflict at the upstream crossover, but not inside
  // the junction core (near the stop line). The left route's displaced turn
  // starts at most 25 m (cross_near) past its core start + crossover length.
  const Route& left = ix.route(left0);
  for (const Zone& z : ix.zones()) {
    const bool match = (z.route_a == left0 && z.route_b == straight2) ||
                       (z.route_a == straight2 && z.route_b == left0);
    if (!match) continue;
    const double begin_on_left = (z.route_a == left0) ? z.a_begin : z.b_begin;
    // Conflict must be in the crossover (first ~40 m of the core span),
    // not at the junction itself.
    EXPECT_LT(begin_on_left - left.core_begin, 45.0)
        << "CFI left/opposing-through conflict must be upstream, not in core";
  }
}

TEST(Ddi4, ThroughMovementsCrossTwice) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kDdi4));
  int east = -1, west = -1;  // the two arterial through routes
  for (const Route& r : ix.routes()) {
    if (r.turn != Turn::kStraight) continue;
    if (r.entry_leg == 0) east = r.id;
    if (r.entry_leg == 2) west = r.id;
  }
  ASSERT_GE(east, 0);
  ASSERT_GE(west, 0);
  int crossings = 0;
  for (const Zone& z : ix.zones()) {
    if ((z.route_a == east && z.route_b == west) ||
        (z.route_a == west && z.route_b == east)) {
      ++crossings;
    }
  }
  EXPECT_EQ(crossings, 2) << "DDI arterial throughs must meet at both crossovers";
}

TEST(Ddi4, MinorLegsHaveNoStraight) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kDdi4));
  for (int leg : {1, 3}) {
    for (int id : ix.routes_from_leg(leg)) {
      EXPECT_NE(ix.route(id).turn, Turn::kStraight);
    }
  }
}

TEST(Roundabout3, AllRoutesShareTheRing) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kRoundabout3));
  EXPECT_EQ(ix.routes().size(), 6u);
  // Routes entering from different legs conflict via the shared ring
  // whenever their arcs overlap; at minimum each route conflicts with some
  // other route.
  std::set<int> routes_in_zones;
  for (const Zone& z : ix.zones()) {
    routes_in_zones.insert(z.route_a);
    routes_in_zones.insert(z.route_b);
  }
  EXPECT_EQ(routes_in_zones.size(), ix.routes().size());
}

TEST(Irregular5, TwentyRoutesAllMovementsClassified) {
  const auto ix = Intersection::build(config_for(IntersectionKind::kIrregular5));
  EXPECT_EQ(ix.routes().size(), 20u);
  for (int leg = 0; leg < 5; ++leg) {
    EXPECT_EQ(ix.routes_from_leg(leg).size(), 4u);
  }
}

}  // namespace
}  // namespace nwade::traffic
