// Configuration-variation sweeps: the geometry builders and scheduler must
// stay sound when the paper's defaults are changed (lane width, approach
// length, speed limit, clearance) — guards against hidden constants.
#include <gtest/gtest.h>

#include "aim/scheduler.h"
#include "traffic/arrivals.h"
#include "traffic/intersection.h"

namespace nwade::traffic {
namespace {

TEST(ConfigSweep, ApproachLengthIsRespectedEverywhere) {
  for (double approach : {120.0, 250.0, 400.0}) {
    IntersectionConfig cfg;
    cfg.kind = IntersectionKind::kCross4;
    cfg.approach_length_m = approach;
    const auto ix = Intersection::build(cfg);
    for (const Route& r : ix.routes()) {
      EXPECT_NEAR(r.core_begin, approach, 1e-6);
    }
  }
}

TEST(ConfigSweep, WiderLanesStillConflictFree) {
  for (double width : {3.0, 3.5, 4.0}) {
    IntersectionConfig cfg;
    cfg.kind = IntersectionKind::kCross4;
    cfg.lane_width_m = width;
    const auto ix = Intersection::build(cfg);
    EXPECT_FALSE(ix.zones().empty()) << "width " << width;
    // Opposing right turns must never conflict regardless of lane width.
    int right0 = -1, right2 = -1;
    for (const auto& r : ix.routes()) {
      if (r.turn == Turn::kRight && r.entry_leg == 0) right0 = r.id;
      if (r.turn == Turn::kRight && r.entry_leg == 2) right2 = r.id;
    }
    for (const auto& z : ix.zones()) {
      EXPECT_FALSE((z.route_a == right0 && z.route_b == right2) ||
                   (z.route_a == right2 && z.route_b == right0))
          << "width " << width;
    }
  }
}

TEST(ConfigSweep, TighterClearanceFindsFewerZones) {
  IntersectionConfig wide;
  wide.kind = IntersectionKind::kCross4;
  wide.conflict_clearance_m = 5.0;
  IntersectionConfig tight = wide;
  tight.conflict_clearance_m = 1.5;
  const auto zx_wide = Intersection::build(wide).zones().size();
  const auto zx_tight = Intersection::build(tight).zones().size();
  EXPECT_GE(zx_wide, zx_tight)
      << "a larger clearance radius can only add conflict area";
}

TEST(ConfigSweep, SpeedLimitScalesCrossingTimes) {
  for (double mph : {30.0, 50.0, 70.0}) {
    IntersectionConfig cfg;
    cfg.kind = IntersectionKind::kCross4;
    cfg.limits.speed_limit_mps = mph_to_mps(mph);
    const auto ix = Intersection::build(cfg);
    aim::ReservationScheduler sched(ix);
    const auto plan = sched.schedule(VehicleId{1}, 0, {}, 0, 20.0);
    const Tick expected =
        seconds_to_ticks(ix.route(0).core_begin / cfg.limits.speed_limit_mps);
    EXPECT_EQ(plan.core_entry, expected) << mph << " mph";
  }
}

TEST(ConfigSweep, SchedulerSoundAtEveryVariation) {
  // The headline invariant holds when geometry parameters move.
  for (double approach : {150.0, 300.0}) {
    for (double width : {3.2, 3.8}) {
      IntersectionConfig cfg;
      cfg.kind = IntersectionKind::kCross4;
      cfg.approach_length_m = approach;
      cfg.lane_width_m = width;
      const auto ix = Intersection::build(cfg);
      aim::ReservationScheduler sched(ix);
      ArrivalGenerator gen(ix, 90, Rng(17));
      std::vector<aim::TravelPlan> plans;
      std::uint64_t vid = 1;
      for (const auto& a : gen.generate(90'000)) {
        plans.push_back(
            sched.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time, 20.0));
      }
      std::vector<const aim::TravelPlan*> ptrs;
      for (const auto& p : plans) ptrs.push_back(&p);
      EXPECT_TRUE(aim::find_plan_conflicts(ix, ptrs, 500).empty())
          << "approach " << approach << " width " << width;
    }
  }
}

TEST(ConfigSweep, ProcessingWindowVariations) {
  // Different batch windows only change batching, not soundness, at the
  // protocol level; here we check plans per block stay consistent with the
  // arrival rate and window length.
  IntersectionConfig cfg;
  cfg.kind = IntersectionKind::kCross4;
  const auto ix = Intersection::build(cfg);
  ArrivalGenerator gen(ix, 120, Rng(3));
  const auto arrivals = gen.generate(60'000);
  for (Duration window : {500, 1000, 2000}) {
    int batches = 0;
    std::size_t batched = 0;
    std::size_t i = 0;
    for (Tick t = window; t <= 60'000; t += window) {
      std::size_t count = 0;
      while (i < arrivals.size() && arrivals[i].time < t) {
        ++i;
        ++count;
      }
      if (count > 0) ++batches;
      batched += count;
    }
    EXPECT_EQ(batched, arrivals.size()) << "window " << window;
    EXPECT_GT(batches, 0);
  }
}

}  // namespace
}  // namespace nwade::traffic
