// Minimal protocol-test harness: wires an ImNode and hand-placed VehicleNodes
// to a network and clock, with full control over spawns, roles, and time —
// no arrival process, no attack auto-assignment. Used by the FSM-level and
// algorithm-level protocol tests.
#pragma once

#include <map>
#include <memory>

#include "nwade/im_node.h"
#include "nwade/vehicle_node.h"

namespace nwade::protocol::testing {

class Harness : public SensorProvider {
 public:
  explicit Harness(traffic::IntersectionKind kind = traffic::IntersectionKind::kCross4,
                   ImAttackMode im_mode = ImAttackMode::kNone, Tick im_trigger = 0) {
    traffic::IntersectionConfig icfg;
    icfg.kind = kind;
    intersection_ = std::make_unique<traffic::Intersection>(
        traffic::Intersection::build(icfg));
    network_ = std::make_unique<net::Network>(queue_, clock_, net::NetworkConfig{});
    signer_ = std::make_unique<crypto::HmacSigner>(Bytes{'t', 'e', 's', 't'});

    ImContext ctx;
    ctx.intersection = intersection_.get();
    ctx.config = &config_;
    ctx.network = network_.get();
    ctx.clock = &clock_;
    ctx.queue = &queue_;
    ctx.sensors = this;
    ctx.signer = signer_.get();
    ctx.metrics = &metrics_;
    ctx.malicious_ids = &malicious_;
    im_ = std::make_unique<ImNode>(ctx, aim::SchedulerConfig{},
                                   ImAttackProfile{im_mode, im_trigger});
    network_->add_node(im_.get());
    im_->start();
  }

  /// Spawns a vehicle on `route` and sends its plan request.
  VehicleNode& spawn(std::uint64_t id, int route,
                     VehicleAttackProfile attack = {}) {
    if (attack.role != VehicleRole::kBenign) malicious_.insert(VehicleId{id});
    VehicleContext ctx;
    ctx.intersection = intersection_.get();
    ctx.config = &config_;
    ctx.network = network_.get();
    ctx.clock = &clock_;
    ctx.sensors = this;
    ctx.im_verifier = signer_->verifier();
    ctx.metrics = &metrics_;
    ctx.malicious_ids = &malicious_;
    auto node = std::make_unique<VehicleNode>(ctx, VehicleId{id}, route,
                                              traffic::VehicleTraits{}, clock_.now(),
                                              attack);
    VehicleNode& ref = *node;
    network_->add_node(node.get());
    node->start();
    vehicles_[VehicleId{id}] = std::move(node);
    return ref;
  }

  /// Advances simulated time, stepping physics every 100 ms and running the
  /// watch for every vehicle each 200 ms.
  void run_until(Tick t) {
    while (now_ < t) {
      now_ += 100;
      queue_.run_until(now_, clock_);
      for (auto& [id, v] : vehicles_) {
        if (v->exited()) continue;
        v->step(now_, 100);
        if (v->exited()) network_->remove_node(v->node_id());
      }
      for (auto& [id, v] : vehicles_) {
        if (!v->exited() && now_ % 200 == 0) v->watch(now_);
      }
    }
  }

  // --- SensorProvider -----------------------------------------------------
  std::vector<Observation> sense_around(geom::Vec2 center, double radius,
                                        VehicleId exclude) const override {
    std::vector<Observation> out;
    for (const auto& [id, v] : vehicles_) {
      if (id == exclude || v->exited() || !v->has_plan()) continue;
      if (v->position().distance_to(center) > radius) continue;
      out.push_back(Observation{id, v->traits(), v->ground_truth()});
    }
    return out;
  }
  std::optional<Observation> observe(VehicleId id) const override {
    const auto it = vehicles_.find(id);
    if (it == vehicles_.end() || it->second->exited()) return std::nullopt;
    return Observation{id, it->second->traits(), it->second->ground_truth()};
  }

  NwadeConfig& config() { return config_; }
  Metrics& metrics() { return metrics_; }
  ImNode& im() { return *im_; }
  net::Network& network() { return *network_; }
  const traffic::Intersection& intersection() const { return *intersection_; }
  VehicleNode& vehicle(std::uint64_t id) { return *vehicles_.at(VehicleId{id}); }
  Tick now() const { return now_; }
  crypto::Signer& signer() { return *signer_; }

 private:
  NwadeConfig config_;
  Metrics metrics_;
  std::set<VehicleId> malicious_;
  std::unique_ptr<traffic::Intersection> intersection_;
  net::SimClock clock_;
  net::EventQueue queue_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<crypto::Signer> signer_;
  std::unique_ptr<ImNode> im_;
  std::map<VehicleId, std::unique_ptr<VehicleNode>> vehicles_;
  Tick now_{0};
};

}  // namespace nwade::protocol::testing
