// IM-side protocol behaviour: windowed scheduling, block publication,
// report verification (direct and two-round voting), evacuation/recovery,
// and the malicious-IM attack modes.
#include "nwade/im_node.h"

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace nwade::protocol {
namespace {

using testing::Harness;

TEST(ImWindow, BatchesRequestsPerWindow) {
  Harness h;
  h.spawn(1, 0);
  h.spawn(2, 3);
  h.spawn(3, 6);
  EXPECT_EQ(h.im().next_seq(), 0u);
  h.run_until(1'200);
  // One window -> one block covering all three requests.
  EXPECT_EQ(h.im().next_seq(), 1u);
  EXPECT_EQ(h.metrics().blocks_published, 1);
  EXPECT_EQ(h.im().active_plan_count(), 3u);
}

TEST(ImWindow, EmptyWindowPublishesNothing) {
  Harness h;
  h.run_until(5'000);
  EXPECT_EQ(h.metrics().blocks_published, 0);
}

TEST(ImWindow, PrunesExitedPlans) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(2'000);
  EXPECT_EQ(h.im().active_plan_count(), 1u);
  h.run_until(60'000);  // vehicle crosses and leaves
  EXPECT_EQ(h.im().active_plan_count(), 0u);
}

TEST(ImState, StandbyBetweenWindows) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(2'500);
  EXPECT_EQ(h.im().state(), ImState::kStandby);
}

TEST(ReportVerification, DirectPerceptionConfirmsRealThreat) {
  Harness h;
  h.spawn(1, 0, {VehicleRole::kDeviator, 6'000, DeviationMode::kAccelerate, {}});
  h.spawn(2, 0);
  h.run_until(15'000);
  EXPECT_GE(h.metrics().evacuation_alerts, 1);
  ASSERT_TRUE(h.metrics().deviation_confirmed.has_value());
  // Confirmation latency from the first report is a round trip or two.
  ASSERT_TRUE(h.metrics().first_true_incident.has_value());
  EXPECT_LE(*h.metrics().deviation_confirmed - *h.metrics().first_true_incident,
            1'500);
}

TEST(ReportVerification, GroupVotingWhenPerceptionLimited) {
  Harness h;
  h.config().im_perception_radius_m = 10.0;  // force the distributed path
  h.spawn(1, 0, {VehicleRole::kDeviator, 6'000, DeviationMode::kAccelerate, {}});
  h.spawn(2, 0);
  h.spawn(3, 0);
  h.spawn(4, 1);
  h.run_until(20'000);
  EXPECT_GE(h.metrics().verify_rounds, 1)
      << "with 10 m perception the IM must ask vehicles to verify";
  EXPECT_TRUE(h.metrics().deviation_confirmed.has_value());
}

TEST(ReportVerification, HonestMajorityDismissesFabrication) {
  Harness h;
  h.config().im_perception_radius_m = 10.0;
  // Many honest witnesses around the framed target.
  for (std::uint64_t i = 1; i <= 6; ++i) h.spawn(i, static_cast<int>(i - 1) % 3);
  h.spawn(7, 4, {VehicleRole::kFalseReporter, 5'000, {}, FalseReportKind::kIncident});
  h.run_until(15'000);
  ASSERT_TRUE(h.metrics().false_incident_injected.has_value());
  EXPECT_TRUE(h.metrics().false_incident_dismissed.has_value());
  EXPECT_EQ(h.metrics().false_alarm_evacuations, 0);
  EXPECT_GT(h.metrics().malicious_reports_recorded, 0)
      << "the liar's identity must be recorded for future reference";
}

TEST(Evacuation, AlertCarriesSuspectAndPlansFollow) {
  Harness h;
  h.spawn(1, 0, {VehicleRole::kDeviator, 6'000, DeviationMode::kAccelerate, {}});
  auto& witness = h.spawn(2, 0);
  h.spawn(3, 6);
  h.run_until(14'000);
  ASSERT_GE(h.metrics().evacuation_alerts, 1);
  // Witnesses received evacuation plans through the chain.
  const aim::TravelPlan* p = witness.store().find_plan(witness.id());
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->evacuation || h.im().state() == ImState::kStandby)
      << "either still evacuating with an evacuation plan, or already recovered";
}

TEST(Evacuation, RecoveryRestoresStandby) {
  Harness h;
  h.spawn(1, 0, {VehicleRole::kDeviator, 6'000, DeviationMode::kAccelerate, {}});
  h.spawn(2, 0);
  h.run_until(40'000);  // deviator exits; recovery completes
  EXPECT_EQ(h.im().state(), ImState::kStandby);
  // Blocks published after recovery carry the revocation of the suspect.
  EXPECT_GT(h.metrics().blocks_published, 1);
}

int conflicting_with_route0(const Harness& h) {
  const auto& ref = h.intersection().zones_for(0).front();
  const auto& z = h.intersection().zones()[static_cast<std::size_t>(ref.zone_id)];
  return z.route_a == 0 ? z.route_b : z.route_a;
}

TEST(MaliciousIm, InjectsConflictOnlyWhenVictimAvailable) {
  Harness h(traffic::IntersectionKind::kCross4,
            ImAttackMode::kConflictingPlans, 0);
  // First window: every plan is in the same batch, so there is no earlier
  // "victim" reservation to collide with — and no plausible warp exists.
  const int conflicting = conflicting_with_route0(h);
  h.spawn(1, 0);
  h.spawn(2, conflicting);
  h.spawn(3, conflicting);
  h.spawn(4, conflicting);
  h.run_until(1'500);
  EXPECT_FALSE(h.metrics().im_conflict_injected.has_value());
  // A fresh request in a later window: the queued victims' far-out core
  // entries are now reachable within the speed limit -> the IM strikes.
  h.spawn(5, 0);
  h.run_until(4'000);
  EXPECT_TRUE(h.metrics().im_conflict_injected.has_value());
}

TEST(MaliciousIm, ConflictingBlockRejectedByVehicles) {
  Harness h(traffic::IntersectionKind::kCross4,
            ImAttackMode::kConflictingPlans, 0);
  const int conflicting = conflicting_with_route0(h);
  auto& v1 = h.spawn(1, 0);
  h.spawn(2, conflicting);
  h.spawn(3, conflicting);
  h.spawn(4, conflicting);
  h.run_until(1'500);
  h.spawn(5, 0);
  h.run_until(6'000);
  ASSERT_TRUE(h.metrics().im_conflict_injected.has_value());
  EXPECT_TRUE(h.metrics().im_conflict_detected.has_value());
  bool anyone_bailed = v1.self_evacuating();
  for (std::uint64_t id = 2; id <= 5; ++id) {
    anyone_bailed = anyone_bailed || h.vehicle(id).self_evacuating();
  }
  EXPECT_TRUE(anyone_bailed) << "a holder of the bad block must bail out";
}

TEST(MaliciousIm, SilenceLeavesReportsUnanswered) {
  Harness h(traffic::IntersectionKind::kCross4, ImAttackMode::kSilence, 0);
  h.spawn(1, 0, {VehicleRole::kDeviator, 5'000, DeviationMode::kAccelerate, {}});
  h.spawn(2, 0);
  h.run_until(18'000);
  EXPECT_EQ(h.metrics().evacuation_alerts, 0);
  EXPECT_EQ(h.metrics().alarm_dismissals, 0);
  EXPECT_GT(h.metrics().benign_self_evacuations, 0);
}

TEST(MaliciousIm, ShamAlertDetectedByLocalWitnesses) {
  Harness h(traffic::IntersectionKind::kCross4, ImAttackMode::kShamAlert, 0);
  // Colluder reports an innocent vehicle; the sham IM "confirms" instantly.
  h.spawn(1, 0);  // the wronged vehicle
  h.spawn(2, 0);  // honest witness nearby
  h.spawn(3, 1, {VehicleRole::kFalseReporter, 5'000, {}, FalseReportKind::kIncident});
  h.run_until(20'000);
  ASSERT_TRUE(h.metrics().false_incident_injected.has_value());
  EXPECT_GE(h.metrics().evacuation_alerts, 1) << "the sham alert went out";
  EXPECT_TRUE(h.metrics().sham_alert_detected.has_value())
      << "a witness near the wronged vehicle must call the sham out";
}

TEST(BlockService, ImAnswersBlockRequests) {
  Harness h;
  auto& v1 = h.spawn(1, 0);
  h.run_until(2'000);
  ASSERT_GT(v1.store().size(), 0u);
  // A later vehicle misses block 0 but needs vehicle 1's plan; its watch
  // issues a BlockRequest and the response populates its plan knowledge.
  h.spawn(2, 0);
  h.run_until(6'000);
  // No incident reports: vehicle 2 obtained 1's plan instead of treating the
  // unknown neighbour as suspicious forever.
  EXPECT_EQ(h.metrics().incident_reports, 0);
}

}  // namespace
}  // namespace nwade::protocol
