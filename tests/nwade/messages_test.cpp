// Protocol message metadata, state names, and configuration invariants.
#include "nwade/messages.h"

#include <gtest/gtest.h>

#include "nwade/im_node.h"
#include "nwade/vehicle_node.h"

namespace nwade::protocol {
namespace {

TEST(Messages, KindsAreUniqueAndStable) {
  PlanRequest pr;
  BlockBroadcast bb;
  BlockRequest brq;
  BlockResponse brs;
  IncidentReport ir;
  VerifyRequest vq;
  VerifyResponse vr;
  AlarmDismiss ad;
  EvacuationAlert ea;
  GlobalReport gr;
  const std::vector<const net::Message*> all = {&pr, &bb, &brq, &brs, &ir,
                                                &vq, &vr,  &ad,  &ea,  &gr};
  std::set<std::string> kinds;
  for (const auto* m : all) kinds.insert(m->kind());
  EXPECT_EQ(kinds.size(), all.size());
  EXPECT_EQ(pr.kind(), "plan_request");
  EXPECT_EQ(gr.kind(), "global_report");
}

TEST(Messages, WireSizesArePlausible) {
  // Every control message is small; blocks dominate.
  EXPECT_LT(PlanRequest{}.wire_size(), 256u);
  EXPECT_LT(IncidentReport{}.wire_size(), 256u);
  EXPECT_LT(GlobalReport{}.wire_size(), 256u);
  BlockBroadcast empty;
  EXPECT_EQ(empty.wire_size(), 0u);  // no block attached
}

TEST(Messages, BlockBroadcastSizeTracksBlock) {
  crypto::HmacSigner signer(Bytes{'k'});
  aim::TravelPlan p;
  p.vehicle = VehicleId{1};
  p.segments = {aim::PlanSegment{0, 0, 10}};
  BlockBroadcast small, large;
  small.block = std::make_shared<chain::Block>(
      chain::Block::package(0, {}, 0, {p}, signer));
  std::vector<aim::TravelPlan> many(20, p);
  large.block = std::make_shared<chain::Block>(
      chain::Block::package(0, {}, 0, many, signer));
  EXPECT_GT(large.wire_size(), small.wire_size());
}

TEST(Names, GlobalReasons) {
  EXPECT_STREQ(global_reason_name(GlobalReason::kConflictingPlans),
               "conflicting_plans");
  EXPECT_STREQ(global_reason_name(GlobalReason::kAbnormalVehicle),
               "abnormal_vehicle");
  EXPECT_STREQ(global_reason_name(GlobalReason::kImUnresponsive),
               "im_unresponsive");
  EXPECT_STREQ(global_reason_name(GlobalReason::kShamAlert), "sham_alert");
}

TEST(Names, VehicleStatesCoverFig2) {
  // The paper's Fig. 2 gives vehicles 8 states; the fault-tolerance layer
  // adds a 9th (degraded). Every one has a distinct name.
  const VehicleState states[] = {
      VehicleState::kPreparation,       VehicleState::kBlockVerification,
      VehicleState::kTraveling,         VehicleState::kLocalVerification,
      VehicleState::kAwaitingResponse,  VehicleState::kGlobalVerification,
      VehicleState::kSelfEvacuation,    VehicleState::kDegraded,
      VehicleState::kExited};
  std::set<std::string> names;
  for (VehicleState s : states) names.insert(vehicle_state_name(s));
  EXPECT_EQ(names.size(), 9u);
}

TEST(Names, ImStatesCoverFig2) {
  // The IM has 7 states.
  const ImState states[] = {ImState::kStandby,   ImState::kScheduling,
                            ImState::kBlockPackaging, ImState::kDissemination,
                            ImState::kReportVerification, ImState::kEvacuation,
                            ImState::kRecovery};
  std::set<std::string> names;
  for (ImState s : states) names.insert(im_state_name(s));
  EXPECT_EQ(names.size(), 7u);
}

TEST(Config, PaperDefaults) {
  const NwadeConfig cfg;
  EXPECT_EQ(cfg.processing_window_ms, 1000);            // delta
  EXPECT_NEAR(cfg.sensing_radius_m, 304.8, 0.1);        // 1000 ft
  EXPECT_NEAR(cfg.im_perception_radius_m, 304.8, 0.1);  // 1000 ft
  EXPECT_TRUE(cfg.double_check_verification);
  EXPECT_TRUE(cfg.security_enabled);
}

TEST(Config, NetworkPaperDefaults) {
  const net::NetworkConfig cfg;
  EXPECT_EQ(cfg.latency_ms, 30);                 // 30 ms
  EXPECT_NEAR(cfg.comm_radius_m, 457.2, 0.1);    // 1500 ft
  EXPECT_EQ(cfg.loss_probability, 0.0);
}

TEST(Config, KinematicPaperDefaults) {
  const traffic::KinematicLimits limits;
  EXPECT_NEAR(limits.speed_limit_mps, 22.35, 0.01);  // 50 mph
  EXPECT_DOUBLE_EQ(limits.max_accel_mps2, 2.0);
  EXPECT_DOUBLE_EQ(limits.max_decel_mps2, 3.0);
}

}  // namespace
}  // namespace nwade::protocol
