// Vehicle-side protocol behaviour at the FSM level: plan adoption, block
// verification outcomes, the neighbourhood watch, timeouts, dismissals,
// global-report handling, and attacker behaviours.
#include "nwade/vehicle_node.h"

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace nwade::protocol {
namespace {

using testing::Harness;

TEST(VehicleFsm, PreparationToTravelingOnPlan) {
  Harness h;
  auto& v = h.spawn(1, 0);
  EXPECT_EQ(v.state(), VehicleState::kPreparation);
  EXPECT_FALSE(v.has_plan());
  h.run_until(1500);  // one processing window + latency
  EXPECT_EQ(v.state(), VehicleState::kTraveling);
  ASSERT_TRUE(v.has_plan());
  EXPECT_EQ(v.plan()->vehicle, VehicleId{1});
  EXPECT_EQ(v.plan()->route_id, 0);
}

TEST(VehicleFsm, FollowsPlanExactly) {
  Harness h;
  auto& v = h.spawn(1, 0);
  h.run_until(20'000);
  ASSERT_TRUE(v.has_plan());
  EXPECT_NEAR(v.progress_s(), v.plan()->s_at(h.now()), 1e-6);
  EXPECT_GT(v.progress_s(), 0);
}

TEST(VehicleFsm, ExitsAtPathEnd) {
  Harness h;
  auto& v = h.spawn(1, 0);
  h.run_until(60'000);
  EXPECT_TRUE(v.exited());
}

TEST(VehicleFsm, ChainAccumulatesBlocks) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(1500);
  h.spawn(2, 3);
  h.run_until(3500);
  // Vehicle 1 saw both its own block and vehicle 2's block.
  EXPECT_GE(h.vehicle(1).store().size(), 2u);
  // Vehicle 2 joined later: it has only the later block(s).
  EXPECT_GE(h.vehicle(2).store().size(), 1u);
  EXPECT_LT(h.vehicle(2).store().size(), h.vehicle(1).store().size() + 1);
}

TEST(Watch, BenignNeighboursNotReported) {
  Harness h;
  for (std::uint64_t i = 1; i <= 6; ++i) h.spawn(i, static_cast<int>(i - 1) % 12);
  h.run_until(30'000);
  EXPECT_EQ(h.metrics().incident_reports, 0);
  EXPECT_EQ(h.metrics().alarm_dismissals, 0);
}

TEST(Watch, DeviatorReportedAndConfirmed) {
  Harness h;
  h.spawn(1, 0, {VehicleRole::kDeviator, 8'000, DeviationMode::kAccelerate, {}});
  h.spawn(2, 0);  // same-route witness behind the deviator
  h.spawn(3, 1);
  h.run_until(20'000);
  ASSERT_TRUE(h.metrics().violation_start.has_value());
  EXPECT_TRUE(h.metrics().first_true_incident.has_value());
  EXPECT_TRUE(h.metrics().deviation_confirmed.has_value());
  EXPECT_GE(h.metrics().evacuation_alerts, 1);
}

TEST(Watch, BrakingDeviatorAlsoCaught) {
  Harness h;
  h.spawn(1, 0, {VehicleRole::kDeviator, 8'000, DeviationMode::kBrake, {}});
  h.spawn(2, 0);
  h.spawn(3, 1);
  h.run_until(25'000);
  EXPECT_TRUE(h.metrics().deviation_confirmed.has_value())
      << "an in-lane full stop violates the plan and must be detected";
}

TEST(Watch, ReportTimeoutTriggersSelfEvacuation) {
  // Silent IM: the reporting vehicle must give up and self-evacuate.
  Harness h(traffic::IntersectionKind::kCross4, ImAttackMode::kSilence, 0);
  h.spawn(1, 0, {VehicleRole::kDeviator, 8'000, DeviationMode::kAccelerate, {}});
  auto& witness = h.spawn(2, 0);
  h.run_until(9'000);
  h.run_until(16'000);
  EXPECT_TRUE(witness.self_evacuating() || witness.exited())
      << "state: " << vehicle_state_name(witness.state());
  EXPECT_GT(h.metrics().global_reports, 0);
}

TEST(Watch, DismissalStandsDownTheReporter) {
  Harness h;
  // Vehicle 2 reports vehicle 1 wrongly? Hard to fabricate via sensing; use
  // the false-reporter role to exercise the dismissal round trip instead.
  h.spawn(1, 0);
  h.spawn(2, 1, {VehicleRole::kFalseReporter, 6'000, {}, FalseReportKind::kIncident});
  h.spawn(3, 2);
  h.run_until(12'000);
  ASSERT_TRUE(h.metrics().false_incident_injected.has_value());
  EXPECT_TRUE(h.metrics().false_incident_dismissed.has_value());
  EXPECT_EQ(h.metrics().evacuation_alerts, 0);
  EXPECT_EQ(h.metrics().false_alarm_evacuations, 0);
}

TEST(BlockVerification, TamperedBroadcastTriggersSelfEvacuation) {
  Harness h;
  auto& v = h.spawn(1, 0);
  h.run_until(2'000);
  ASSERT_TRUE(v.has_plan());
  // Forge a block with a bad signature and hand-deliver it.
  chain::Block forged;
  forged.seq = 99;
  forged.timestamp = h.now();
  forged.signature = Bytes{1, 2, 3};
  auto msg = std::make_shared<BlockBroadcast>();
  msg->block = std::make_shared<chain::Block>(forged);
  net::Envelope env{kImNodeId, v.node_id(), true, h.now(), msg};
  v.on_message(env);
  EXPECT_TRUE(v.self_evacuating());
  EXPECT_GT(h.metrics().block_verification_failures, 0);
}

TEST(BlockVerification, DuplicateBroadcastIsHarmless) {
  Harness h;
  auto& v = h.spawn(1, 0);
  h.run_until(2'000);
  const std::size_t size_before = v.store().size();
  ASSERT_GT(size_before, 0u);
  // Re-deliver the latest block (a rebroadcast).
  auto msg = std::make_shared<BlockBroadcast>();
  msg->block = std::make_shared<chain::Block>(*v.store().latest());
  net::Envelope env{kImNodeId, v.node_id(), true, h.now(), msg};
  v.on_message(env);
  EXPECT_FALSE(v.self_evacuating());
  EXPECT_EQ(v.store().size(), size_before);
}

TEST(BlockVerification, RevokedListAdoptedFromChain) {
  Harness h;
  auto& v = h.spawn(1, 0);
  h.run_until(2'000);
  // Build a legitimate next block carrying a revocation.
  const chain::Block* latest = v.store().latest();
  ASSERT_NE(latest, nullptr);
  chain::Block next = chain::Block::package(latest->seq + 1, latest->hash(),
                                            h.now(), {}, h.signer(), {VehicleId{77}});
  auto msg = std::make_shared<BlockBroadcast>();
  msg->block = std::make_shared<chain::Block>(next);
  v.on_message(net::Envelope{kImNodeId, v.node_id(), true, h.now(), msg});
  EXPECT_FALSE(v.self_evacuating());
  // The revocation is visible indirectly: watch will never report 77, and
  // more importantly verification accepted the signed revocation block.
  EXPECT_EQ(v.store().latest()->revoked.size(), 1u);
}

TEST(GlobalReports, FalseConflictClaimRefuted) {
  Harness h;
  auto& v1 = h.spawn(1, 0);
  h.spawn(2, 3);
  h.run_until(3'000);
  ASSERT_GT(v1.store().size(), 0u);
  // Deliver a lying global report that block 0 contains conflicts.
  auto gr = std::make_shared<GlobalReport>();
  gr->reporter = VehicleId{2};
  gr->reason = GlobalReason::kConflictingPlans;
  gr->block_seq = v1.store().latest()->seq;
  v1.on_message(net::Envelope{vehicle_node(VehicleId{2}), v1.node_id(), true,
                              h.now(), gr});
  // v1 verified that block itself: it must NOT self-evacuate, and it files a
  // misbehaviour report against the liar.
  EXPECT_FALSE(v1.self_evacuating());
  h.run_until(4'000);
  EXPECT_GE(h.metrics().incident_reports, 1);
}

TEST(GlobalReports, ThresholdCountTriggersCautionaryEvacuation) {
  Harness h;
  h.config().global_report_threshold = 3;
  auto& v1 = h.spawn(1, 0);
  h.run_until(2'000);
  // Three distinct (fabricated) reporters claim an abnormal vehicle far away.
  for (std::uint64_t reporter = 50; reporter < 53; ++reporter) {
    auto gr = std::make_shared<GlobalReport>();
    gr->reporter = VehicleId{reporter};
    gr->reason = GlobalReason::kAbnormalVehicle;
    gr->suspect = VehicleId{99};  // unobservable -> "far away" branch
    v1.on_message(net::Envelope{vehicle_node(VehicleId{reporter}), v1.node_id(),
                                true, h.now(), gr});
  }
  EXPECT_TRUE(v1.self_evacuating())
      << "threshold reached with an unobservable suspect and no dismissal";
}

TEST(GlobalReports, BelowThresholdDoesNothing) {
  Harness h;
  h.config().global_report_threshold = 3;
  auto& v1 = h.spawn(1, 0);
  h.run_until(2'000);
  for (std::uint64_t reporter = 50; reporter < 52; ++reporter) {  // only 2
    auto gr = std::make_shared<GlobalReport>();
    gr->reporter = VehicleId{reporter};
    gr->reason = GlobalReason::kAbnormalVehicle;
    gr->suspect = VehicleId{99};
    v1.on_message(net::Envelope{vehicle_node(VehicleId{reporter}), v1.node_id(),
                                true, h.now(), gr});
  }
  EXPECT_FALSE(v1.self_evacuating());
}

TEST(GlobalReports, DuplicateReportersCountOnce) {
  Harness h;
  h.config().global_report_threshold = 3;
  auto& v1 = h.spawn(1, 0);
  h.run_until(2'000);
  // The same reporter spams five times: still one distinct voice.
  for (int i = 0; i < 5; ++i) {
    auto gr = std::make_shared<GlobalReport>();
    gr->reporter = VehicleId{50};
    gr->reason = GlobalReason::kAbnormalVehicle;
    gr->suspect = VehicleId{99};
    v1.on_message(net::Envelope{vehicle_node(VehicleId{50}), v1.node_id(), true,
                                h.now(), gr});
  }
  EXPECT_FALSE(v1.self_evacuating());
}

TEST(SelfEvacuation, PullsOverBeforeCore) {
  Harness h(traffic::IntersectionKind::kCross4, ImAttackMode::kSilence, 0);
  h.spawn(1, 0, {VehicleRole::kDeviator, 6'000, DeviationMode::kAccelerate, {}});
  auto& witness = h.spawn(2, 0);
  h.run_until(20'000);
  if (witness.self_evacuating()) {
    const auto& route = h.intersection().route(witness.route_id());
    if (witness.progress_s() < route.core_begin - 5.0) {
      // Pre-core self-evacuation comes to a stop on the shoulder.
      h.run_until(40'000);
      EXPECT_LT(witness.speed_mps(), 0.6);
    }
  }
}

TEST(Attack, DeviatorPhysicallyLeavesPlan) {
  Harness h;
  auto& d = h.spawn(1, 0, {VehicleRole::kDeviator, 5'000,
                           DeviationMode::kAccelerate, {}});
  h.run_until(4'900);
  ASSERT_TRUE(d.has_plan());
  h.run_until(12'000);
  const double expected = d.plan()->s_at(h.now());
  EXPECT_GT(d.progress_s(), expected + 5.0)
      << "accelerating deviator must run ahead of its plan";
}

TEST(Attack, FalseReporterTargetsNonColluders) {
  Harness h;
  h.spawn(1, 0);  // the only candidate target
  h.spawn(2, 1, {VehicleRole::kFalseReporter, 4'000, {}, FalseReportKind::kIncident});
  h.run_until(10'000);
  ASSERT_TRUE(h.metrics().false_incident_injected.has_value());
}

TEST(Attack, TypeBLiarBroadcastsWrongPlanClaim) {
  Harness h;
  h.spawn(1, 0);
  h.spawn(2, 1, {VehicleRole::kFalseReporter, 4'000, {}, FalseReportKind::kWrongPlans});
  h.spawn(3, 2);
  h.run_until(12'000);
  ASSERT_TRUE(h.metrics().false_global_injected.has_value());
  EXPECT_TRUE(h.metrics().false_global_detected.has_value());
  EXPECT_EQ(h.metrics().false_alarm_evacuations, 0);
}

TEST(Lifecycle, SecurityDisabledSkipsEverything) {
  Harness h;
  h.config().security_enabled = false;
  auto& v = h.spawn(1, 0);
  h.spawn(2, 0, {VehicleRole::kDeviator, 5'000, DeviationMode::kAccelerate, {}});
  h.run_until(20'000);
  EXPECT_TRUE(v.has_plan());           // plans still flow
  EXPECT_EQ(h.metrics().incident_reports, 0);  // but nobody watches
  EXPECT_EQ(h.metrics().vehicle_verify_us.size(), 0u);
}

}  // namespace
}  // namespace nwade::protocol
