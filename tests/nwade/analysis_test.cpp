// Eq. (2)/(3) closed forms, including the paper's worked example.
#include "nwade/analysis.h"

#include <gtest/gtest.h>

#include "nwade/config.h"

namespace nwade::protocol {
namespace {

TEST(Analysis, PaperWorkedExample) {
  // p_v*p_loc = 10%, p_im = 0.1%, k = 20/2+1 = 11 -> P_e ~ 0.1%.
  const double pe = self_evacuation_probability(11, 0.10, 0.001);
  EXPECT_NEAR(pe, 0.001, 0.0002);
  EXPECT_EQ(majority_threshold(20), 11);
}

TEST(Analysis, SelfEvacuationBounds) {
  EXPECT_DOUBLE_EQ(self_evacuation_probability(5, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(self_evacuation_probability(0, 0.5, 0.0), 1.0);  // k=0: x^0=1
  EXPECT_NEAR(self_evacuation_probability(50, 0.1, 0.0), 0.0, 1e-12);
  // Compromised IM dominates for large k.
  EXPECT_NEAR(self_evacuation_probability(50, 0.1, 0.25), 0.25, 1e-9);
}

TEST(Analysis, SelfEvacuationDecreasesWithK) {
  double prev = 1.0;
  for (int k = 1; k <= 20; ++k) {
    const double pe = self_evacuation_probability(k, 0.2, 0.001);
    EXPECT_LE(pe, prev + 1e-15) << "k=" << k;
    prev = pe;
  }
}

TEST(Analysis, DetectionProbabilityShape) {
  // P_d is high for very small and very large k (the exponent k*p^k peaks in
  // between), and always in (0, 1].
  const double omega = 5.0, pv = 0.3;
  double min_pd = 1.0;
  int argmin = 0;
  for (int k = 0; k <= 30; ++k) {
    const double pd = detection_probability(k, pv, omega);
    EXPECT_GT(pd, 0.0);
    EXPECT_LE(pd, 1.0);
    if (pd < min_pd) {
      min_pd = pd;
      argmin = k;
    }
  }
  EXPECT_GT(argmin, 0);
  EXPECT_LT(argmin, 30);
  EXPECT_NEAR(detection_probability(0, pv, omega), 1.0, 1e-12);
  EXPECT_NEAR(detection_probability(30, pv, omega), 1.0, 1e-3);
}

TEST(Analysis, MajorityThreshold) {
  EXPECT_EQ(majority_threshold(0), 1);
  EXPECT_EQ(majority_threshold(1), 1);
  EXPECT_EQ(majority_threshold(2), 2);
  EXPECT_EQ(majority_threshold(21), 11);
}

TEST(Table1, HasElevenSettings) {
  const auto settings = table1_attack_settings();
  ASSERT_EQ(settings.size(), 11u);
  // Spot-check the structure against Table I.
  const auto v10 = attack_setting_by_name("V10");
  EXPECT_EQ(v10.malicious_vehicles, 10);
  EXPECT_FALSE(v10.im_malicious);
  EXPECT_EQ(v10.plan_violations, 1);
  EXPECT_EQ(v10.false_reports, 9);
  const auto im = attack_setting_by_name("IM");
  EXPECT_TRUE(im.im_malicious);
  EXPECT_EQ(im.malicious_vehicles, 0);
  const auto imv5 = attack_setting_by_name("IM_V5");
  EXPECT_TRUE(imv5.im_malicious);
  EXPECT_EQ(imv5.malicious_vehicles, 5);
  EXPECT_EQ(imv5.false_reports, 4);
  // Consistency: vehicles = violations + false reports in every setting.
  for (const auto& s : settings) {
    EXPECT_EQ(s.malicious_vehicles, s.plan_violations + s.false_reports) << s.name;
  }
}

TEST(Table1, UnknownNameIsBenign) {
  const auto s = attack_setting_by_name("nonsense");
  EXPECT_EQ(s.malicious_vehicles, 0);
  EXPECT_FALSE(s.im_malicious);
}

}  // namespace
}  // namespace nwade::protocol
