// Idempotent message handling under duplication and replay: the fault layer
// can deliver any packet twice and blocks out of order; protocol state must
// converge to the same place regardless.
#include <gtest/gtest.h>

#include "nwade/messages.h"
#include "protocol_harness.h"

namespace nwade::protocol {
namespace {

using testing::Harness;

net::Envelope envelope(NodeId from, NodeId to, net::MessagePtr msg, Tick now) {
  return net::Envelope{from, to, /*broadcast=*/false, now, std::move(msg)};
}

TEST(Idempotency, DuplicatePlanRequestIsNotDoubleScheduled) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(2'000);
  ASSERT_TRUE(h.vehicle(1).has_plan());
  const Tick issued = h.vehicle(1).plan()->issued_at;
  ASSERT_EQ(h.im().active_plan_count(), 1u);
  const chain::BlockSeq seq_before = h.im().next_seq();

  // Replay the plan request straight into the IM (as a duplicated packet
  // would arrive). The IM must re-send the existing block, not re-schedule.
  auto req = std::make_shared<PlanRequest>();
  req->vehicle = VehicleId{1};
  req->route_id = 0;
  req->status = h.vehicle(1).ground_truth();
  h.im().on_message(envelope(vehicle_node(VehicleId{1}), kImNodeId,
                             std::move(req), h.now()));
  h.run_until(4'000);

  EXPECT_EQ(h.im().active_plan_count(), 1u);
  ASSERT_TRUE(h.vehicle(1).has_plan());
  EXPECT_EQ(h.vehicle(1).plan()->issued_at, issued);  // same plan, not redone
  // No new scheduling block was packaged for the duplicate (windows with no
  // pending work publish nothing).
  EXPECT_EQ(h.im().next_seq(), seq_before);
}

TEST(Idempotency, ReplayedBlockBroadcastDoesNotRollPlanBack) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(2'000);
  ASSERT_TRUE(h.vehicle(1).has_plan());
  const auto* first_block = h.vehicle(1).store().latest();
  ASSERT_NE(first_block, nullptr);
  const chain::Block replay = *first_block;

  // A later window issues more blocks (another vehicle joins).
  h.spawn(2, 1);
  h.run_until(4'000);
  ASSERT_TRUE(h.vehicle(2).has_plan());
  const std::size_t store_size = h.vehicle(1).store().size();
  ASSERT_GT(store_size, 1u);
  const Tick issued = h.vehicle(1).plan()->issued_at;

  // Replay the old block at vehicle 1 several times.
  for (int i = 0; i < 3; ++i) {
    auto msg = std::make_shared<BlockBroadcast>();
    msg->block = std::make_shared<chain::Block>(replay);
    h.vehicle(1).on_message(
        envelope(kImNodeId, vehicle_node(VehicleId{1}), std::move(msg), h.now()));
  }
  h.run_until(5'000);

  EXPECT_EQ(h.vehicle(1).store().size(), store_size);  // replay not appended
  ASSERT_TRUE(h.vehicle(1).has_plan());
  EXPECT_EQ(h.vehicle(1).plan()->issued_at, issued);  // plan not rolled back
  EXPECT_EQ(h.metrics().block_verification_failures, 0);
  EXPECT_FALSE(h.vehicle(1).self_evacuating());
}

TEST(Idempotency, BlockSeqGapTriggersBoundedRecoveryAndResync) {
  Harness h;
  h.spawn(1, 0);
  h.run_until(2'000);
  ASSERT_TRUE(h.vehicle(1).has_plan());
  const auto* latest = h.vehicle(1).store().latest();
  ASSERT_NE(latest, nullptr);
  // The resync below replaces the store's contents, so `latest` dangles once
  // the gap block is handled; keep only its sequence number.
  const chain::BlockSeq base_seq = latest->seq;
  const Tick issued = h.vehicle(1).plan()->issued_at;

  // A block three sequence numbers ahead arrives (the two between were lost
  // in a burst). The vehicle requests exactly the missing range, then
  // resyncs its cache from the new block.
  chain::Block future = chain::Block::package(
      base_seq + 3, crypto::Digest{}, h.now(), {}, h.signer());
  auto msg = std::make_shared<BlockBroadcast>();
  msg->block = std::make_shared<chain::Block>(future);
  h.vehicle(1).on_message(
      envelope(kImNodeId, vehicle_node(VehicleId{1}), std::move(msg), h.now()));

  EXPECT_EQ(h.metrics().gap_block_requests, 2);  // seq+1 and seq+2, no more
  ASSERT_NE(h.vehicle(1).store().latest(), nullptr);
  EXPECT_EQ(h.vehicle(1).store().latest()->seq, base_seq + 3);
  EXPECT_EQ(h.vehicle(1).store().size(), 1u);  // resynced from the gap block
  ASSERT_TRUE(h.vehicle(1).has_plan());
  EXPECT_EQ(h.vehicle(1).plan()->issued_at, issued);  // own plan survives

  // The same gap block again: now a plain duplicate, no further requests.
  auto again = std::make_shared<BlockBroadcast>();
  again->block = std::make_shared<chain::Block>(future);
  h.vehicle(1).on_message(
      envelope(kImNodeId, vehicle_node(VehicleId{1}), std::move(again), h.now()));
  EXPECT_EQ(h.metrics().gap_block_requests, 2);
  EXPECT_EQ(h.vehicle(1).store().size(), 1u);
}

TEST(Idempotency, DuplicateVerifyRequestIsAnsweredOnce) {
  Harness h;
  h.spawn(1, 0);
  h.spawn(2, 0);
  h.run_until(2'000);
  ASSERT_TRUE(h.vehicle(1).has_plan());

  const auto responses_before =
      h.network().stats().packets_by_kind.count("verify_response")
          ? h.network().stats().packets_by_kind.at("verify_response")
          : 0u;
  for (int i = 0; i < 3; ++i) {
    auto req = std::make_shared<VerifyRequest>();
    req->request_id = 77;
    req->suspect = VehicleId{2};
    h.vehicle(1).on_message(
        envelope(kImNodeId, vehicle_node(VehicleId{1}), std::move(req), h.now()));
  }
  h.run_until(3'000);
  const auto responses_after =
      h.network().stats().packets_by_kind.at("verify_response");
  EXPECT_EQ(responses_after - responses_before, 1u);
}

TEST(Idempotency, DuplicateVerifyResponsesDoNotSkewTheVote) {
  Harness h;
  // Force the distributed verification path: the IM cannot perceive anyone.
  h.config().im_perception_radius_m = 1.0;
  for (std::uint64_t id = 1; id <= 4; ++id) h.spawn(id, 0);
  h.run_until(3'000);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(h.vehicle(id).has_plan());
  }

  // Vehicle 1 (falsely) reports vehicle 2. The IM asks the remaining
  // neighbours (3 and 4) to verify; both will truthfully answer "normal".
  auto report = std::make_shared<IncidentReport>();
  report->reporter = VehicleId{1};
  report->evidence.suspect = VehicleId{2};
  report->evidence.deviation_m = 50.0;
  report->evidence.observed_at = h.now();
  h.im().on_message(envelope(vehicle_node(VehicleId{1}), kImNodeId,
                             std::move(report), h.now()));

  // A duplicating channel replays two forged "abnormal" votes from phantom
  // responders, twice each. Keyed by responder, they must count once each:
  // the tally is 2 abnormal vs 2 normal — no majority, alarm dismissed. If
  // duplicates were double-counted (4 vs 2) the IM would evacuate.
  for (int copy = 0; copy < 2; ++copy) {
    for (std::uint64_t phantom : {50u, 51u}) {
      auto vote = std::make_shared<VerifyResponse>();
      vote->request_id = 1;  // first round id
      vote->responder = VehicleId{phantom};
      vote->suspect = VehicleId{2};
      vote->abnormal = true;
      h.im().on_message(envelope(vehicle_node(VehicleId{phantom}), kImNodeId,
                                 std::move(vote), h.now()));
    }
  }
  h.run_until(5'000);

  EXPECT_EQ(h.metrics().alarm_dismissals, 1);
  EXPECT_EQ(h.metrics().evacuation_alerts, 0);
  EXPECT_EQ(h.metrics().false_alarm_evacuations, 0);
}

}  // namespace
}  // namespace nwade::protocol
