// DES kernel edge cases beyond the network tests.
#include <gtest/gtest.h>

#include "net/clock.h"

namespace nwade::net {
namespace {

TEST(SimClock, MonotonicAdvance) {
  SimClock c;
  EXPECT_EQ(c.now(), 0);
  c.advance_to(100);
  EXPECT_EQ(c.now(), 100);
  c.advance_to(50);  // never goes backwards
  EXPECT_EQ(c.now(), 100);
}

TEST(EventQueue, EmptyRunAdvancesClock) {
  EventQueue q;
  SimClock c;
  q.run_until(500, c);
  EXPECT_EQ(c.now(), 500);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTickMax);
}

TEST(EventQueue, EventSeesItsOwnTimestamp) {
  EventQueue q;
  SimClock c;
  Tick seen = -1;
  q.schedule_at(42, [&] { seen = c.now(); });
  q.run_until(100, c);
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, EventsBeyondHorizonStayQueued) {
  EventQueue q;
  SimClock c;
  int fired = 0;
  q.schedule_at(10, [&] { fired++; });
  q.schedule_at(200, [&] { fired++; });
  q.run_until(100, c);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
  q.run_until(300, c);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RecursiveSchedulingSameTick) {
  EventQueue q;
  SimClock c;
  std::vector<int> order;
  q.schedule_at(10, [&] {
    order.push_back(1);
    // Same-tick event scheduled from within an event still fires this run.
    q.schedule_at(10, [&] { order.push_back(2); });
  });
  q.run_until(10, c);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PeriodicSelfRearming) {
  EventQueue q;
  SimClock c;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) q.schedule_at(c.now() + 100, tick);
  };
  q.schedule_at(100, tick);
  q.run_until(10'000, c);
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace nwade::net
