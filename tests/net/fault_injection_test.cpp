// Fault-injection layer: burst loss, jitter/reordering, duplication, link
// rules, outages, and the delivery-time semantics they force on the medium.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/network.h"

namespace nwade::net {
namespace {

struct TestMessage : Message {
  explicit TestMessage(std::string k = "test", std::size_t size = 100, int s = 0)
      : kind_(std::move(k)), size_(size), seq(s) {}
  std::string kind() const override { return kind_; }
  std::size_t wire_size() const override { return size_; }
  std::string kind_;
  std::size_t size_;
  int seq;
};

class TestNode : public Node {
 public:
  TestNode(NodeId id, geom::Vec2 pos) : id_(id), pos_(pos) {}
  NodeId node_id() const override { return id_; }
  geom::Vec2 position() const override { return pos_; }
  void on_message(const Envelope& env) override { received.push_back(env); }

  void move_to(geom::Vec2 p) { pos_ = p; }

  std::vector<Envelope> received;

 private:
  NodeId id_;
  geom::Vec2 pos_;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  NetworkConfig cfg_;
  SimClock clock_;
  EventQueue queue_;
};

TEST(BurstLossProfile, HelperHitsTargetStationaryLoss) {
  const FaultProfile f = burst_loss_profile(0.2, 8.0);
  const double p = f.ge_p_good_to_bad, r = f.ge_p_bad_to_good;
  EXPECT_NEAR(p / (p + r), 0.2, 1e-9);       // stationary bad share
  EXPECT_NEAR(1.0 / r, 8.0, 1e-9);           // mean burst length
  EXPECT_TRUE(f.burst_loss_enabled());
  EXPECT_TRUE(f.any_enabled());
  EXPECT_FALSE(FaultProfile{}.any_enabled());
}

TEST_F(FaultInjectionTest, GilbertElliottLossIsBursty) {
  cfg_.fault = burst_loss_profile(0.2, 8.0);
  cfg_.seed = 7;
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  constexpr int kPackets = 4000;
  for (int i = 0; i < kPackets; ++i) {
    net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("t", 10, i));
  }
  queue_.run_until(1000, clock_);

  const double loss_rate =
      static_cast<double>(net.stats().packets_dropped) / kPackets;
  EXPECT_NEAR(loss_rate, 0.2, 0.05);

  // Burstiness: reconstruct the loss pattern from the delivered seq numbers
  // and measure the mean length of consecutive-loss runs. Uniform loss at the
  // same rate gives ~1/(1-0.2) = 1.25; the GE profile targets 8.
  std::vector<bool> delivered(kPackets, false);
  for (const Envelope& env : b.received) {
    delivered[static_cast<std::size_t>(
        static_cast<const TestMessage*>(env.msg.get())->seq)] = true;
  }
  int runs = 0, lost = 0;
  for (int i = 0; i < kPackets; ++i) {
    if (!delivered[i]) {
      ++lost;
      if (i == 0 || delivered[i - 1]) ++runs;
    }
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(lost) / runs;
  EXPECT_GT(mean_run, 3.0);  // far burstier than uniform's 1.25
}

TEST_F(FaultInjectionTest, JitterDelaysAndReordersPackets) {
  cfg_.fault.jitter_ms = 100;
  cfg_.seed = 3;
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  constexpr int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("t", 10, i));
  }
  queue_.run_until(1000, clock_);
  ASSERT_EQ(b.received.size(), static_cast<std::size_t>(kPackets));  // no loss

  std::vector<int> order;
  for (const Envelope& env : b.received) {
    order.push_back(static_cast<const TestMessage*>(env.msg.get())->seq);
  }
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));  // reordered
}

TEST_F(FaultInjectionTest, DuplicationDeliversExtraCopies) {
  cfg_.fault.duplicate_probability = 1.0;
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  for (int i = 0; i < 10; ++i) {
    net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  }
  queue_.run_until(1000, clock_);
  EXPECT_EQ(b.received.size(), 20u);
  EXPECT_EQ(net.stats().packets_duplicated, 10u);
  EXPECT_EQ(net.stats().packets_sent, 10u);  // duplicates are not fresh sends
}

TEST_F(FaultInjectionTest, LinkRuleDropsMatchingTrafficOnly) {
  LinkRule rule;
  rule.from = NodeId{1};
  rule.to = NodeId{2};
  rule.kind = "blocked";
  cfg_.fault.link_rules.push_back(rule);
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0}), c(NodeId{3}, {20, 0});
  for (TestNode* n : {&a, &b, &c}) net.add_node(n);

  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("blocked"));
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("allowed"));
  net.unicast(NodeId{1}, NodeId{3}, std::make_shared<TestMessage>("blocked"));
  queue_.run_until(1000, clock_);

  ASSERT_EQ(b.received.size(), 1u);  // only the "allowed" kind got through
  EXPECT_EQ(b.received[0].msg->kind(), "allowed");
  EXPECT_EQ(c.received.size(), 1u);  // other receivers unaffected
  EXPECT_EQ(net.stats().packets_dropped, 1u);
  EXPECT_EQ(net.stats().dropped_by_kind.at("blocked"), 1u);
}

TEST_F(FaultInjectionTest, LinkRuleRespectsActiveWindow) {
  LinkRule rule;  // wildcard sender/receiver/kind, active [100, 200) only
  rule.active_from = 100;
  rule.active_until = 200;
  cfg_.fault.link_rules.push_back(rule);
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);

  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());  // t=0
  queue_.run_until(150, clock_);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());  // t=150
  queue_.run_until(250, clock_);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());  // t=250
  queue_.run_until(1000, clock_);

  EXPECT_EQ(b.received.size(), 2u);  // only the t=150 send was inside the window
  EXPECT_EQ(net.stats().packets_dropped, 1u);
}

TEST_F(FaultInjectionTest, ReceiverOutageBlackholesDeliveries) {
  cfg_.fault.outages.push_back(Outage{NodeId{2}, 0, 500});
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);

  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());  // dark
  queue_.run_until(600, clock_);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());  // back up
  queue_.run_until(1000, clock_);

  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.stats().packets_lost_outage, 1u);
  EXPECT_EQ(net.stats().dropped_by_kind.at("test"), 1u);
}

TEST_F(FaultInjectionTest, SenderOutageEmitsNothing) {
  cfg_.fault.outages.push_back(Outage{NodeId{1}, 0, 500});
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  queue_.run_until(1000, clock_);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().packets_sent, 0u);  // never reached the medium
  EXPECT_EQ(net.stats().packets_lost_outage, 1u);
}

TEST_F(FaultInjectionTest, OutageEndsExactlyAtUntil) {
  const FaultProfile f = [] {
    FaultProfile p;
    p.outages.push_back(Outage{NodeId{5}, 100, 200});
    return p;
  }();
  EXPECT_FALSE(f.node_down(NodeId{5}, 99));
  EXPECT_TRUE(f.node_down(NodeId{5}, 100));
  EXPECT_TRUE(f.node_down(NodeId{5}, 199));
  EXPECT_FALSE(f.node_down(NodeId{5}, 200));  // [from, until)
  EXPECT_FALSE(f.node_down(NodeId{6}, 150));
}

TEST_F(FaultInjectionTest, SenderRemovalDoesNotRecallInFlightPackets) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  net.remove_node(NodeId{1});  // the emission already happened
  queue_.run_until(1000, clock_);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.stats().packets_delivered, 1u);
}

TEST_F(FaultInjectionTest, RangeIsRecheckedAtDeliveryTime) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  b.move_to({100000, 0});  // drifts out of range while the packet is in flight
  queue_.run_until(1000, clock_);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().packets_out_of_range, 1u);
  EXPECT_EQ(net.stats().packets_delivered, 0u);
}

TEST_F(FaultInjectionTest, DeliveryRangeIsMeasuredFromEmissionOrigin) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  // The SENDER teleporting away must not kill the packet: the wavefront
  // already left from the origin captured at emission time.
  a.move_to({100000, 0});
  queue_.run_until(1000, clock_);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(FaultInjectionTest, BroadcastCountsOutOfRangeRecipients) {
  Network net(queue_, clock_, cfg_);
  TestNode src(NodeId{1}, {0, 0});
  TestNode near(NodeId{2}, {100, 0});
  TestNode far1(NodeId{3}, {5000, 0}), far2(NodeId{4}, {0, 9000});
  for (TestNode* n : {&src, &near, &far1, &far2}) net.add_node(n);
  net.broadcast(NodeId{1}, std::make_shared<TestMessage>());
  queue_.run_until(100, clock_);
  EXPECT_EQ(near.received.size(), 1u);
  EXPECT_EQ(net.stats().packets_out_of_range, 2u);
  EXPECT_EQ(net.stats().packets_sent, 1u);
}

TEST_F(FaultInjectionTest, PerKindByteAndDropAccounting) {
  cfg_.fault.link_rules.push_back(
      LinkRule{NodeId{}, NodeId{}, "plan", 1.0, 0, kTickMax});
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("plan", 400));
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("alert", 60));
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("alert", 60));
  queue_.run_until(1000, clock_);

  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.bytes_by_kind.at("plan"), 400u);   // counted even though dropped
  EXPECT_EQ(s.bytes_by_kind.at("alert"), 120u);
  EXPECT_EQ(s.dropped_by_kind.at("plan"), 1u);
  EXPECT_FALSE(s.dropped_by_kind.contains("alert"));
  EXPECT_EQ(s.bytes_sent, 520u);
}

TEST_F(FaultInjectionTest, ZeroFaultProfileMatchesPlainNetworkExactly) {
  // The fault layer must consume randomness only when a feature is enabled:
  // a default FaultProfile under uniform loss reproduces the exact same
  // drop pattern as the pre-fault-layer network with the same seed.
  cfg_.loss_probability = 0.3;
  cfg_.seed = 42;

  auto run = [&](const FaultProfile& fault) {
    SimClock clock;
    EventQueue queue;
    NetworkConfig cfg = cfg_;
    cfg.fault = fault;
    Network net(queue, clock, cfg);
    TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
    net.add_node(&a);
    net.add_node(&b);
    std::vector<int> got;
    for (int i = 0; i < 500; ++i) {
      net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("t", 10, i));
    }
    queue.run_until(1000, clock);
    for (const Envelope& env : b.received) {
      got.push_back(static_cast<const TestMessage*>(env.msg.get())->seq);
    }
    return got;
  };

  FaultProfile inert;  // present but all-off
  FaultProfile with_rules_elsewhere;  // rules that never match this traffic
  with_rules_elsewhere.outages.push_back(Outage{NodeId{99}, 0, 1000});
  EXPECT_EQ(run(FaultProfile{}), run(inert));
  EXPECT_EQ(run(FaultProfile{}), run(with_rules_elsewhere));
}

}  // namespace
}  // namespace nwade::net
