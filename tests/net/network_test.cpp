// DES kernel + network: ordering, latency, radius, loss, accounting.
#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace nwade::net {
namespace {

struct TestMessage : Message {
  explicit TestMessage(std::string k = "test", std::size_t size = 100)
      : kind_(std::move(k)), size_(size) {}
  std::string kind() const override { return kind_; }
  std::size_t wire_size() const override { return size_; }
  std::string kind_;
  std::size_t size_;
};

class TestNode : public Node {
 public:
  TestNode(NodeId id, geom::Vec2 pos) : id_(id), pos_(pos) {}
  NodeId node_id() const override { return id_; }
  geom::Vec2 position() const override { return pos_; }
  void on_message(const Envelope& env) override { received.push_back(env); }

  void move_to(geom::Vec2 p) { pos_ = p; }

  std::vector<Envelope> received;

 private:
  NodeId id_;
  geom::Vec2 pos_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkConfig cfg_;
  SimClock clock_;
  EventQueue queue_;
};

TEST_F(NetworkTest, EventQueueOrdersByTime) {
  std::vector<int> order;
  queue_.schedule_at(30, [&] { order.push_back(3); });
  queue_.schedule_at(10, [&] { order.push_back(1); });
  queue_.schedule_at(20, [&] { order.push_back(2); });
  queue_.run_until(100, clock_);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock_.now(), 100);
}

TEST_F(NetworkTest, EventQueueStableAtSameTick) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue_.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  queue_.run_until(10, clock_);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(NetworkTest, EventsScheduledDuringRunExecuteIfInRange) {
  std::vector<int> order;
  queue_.schedule_at(10, [&] {
    order.push_back(1);
    queue_.schedule_at(20, [&] { order.push_back(2); });
    queue_.schedule_at(200, [&] { order.push_back(99); });
  });
  queue_.run_until(100, clock_);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue_.next_time(), 200);
}

TEST_F(NetworkTest, UnicastDeliversWithLatency) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {100, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  EXPECT_TRUE(b.received.empty());
  queue_.run_until(29, clock_);
  EXPECT_TRUE(b.received.empty());
  queue_.run_until(30, clock_);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, NodeId{1});
  EXPECT_EQ(b.received[0].sent_at, 0);
  EXPECT_FALSE(b.received[0].broadcast);
}

TEST_F(NetworkTest, OutOfRangeUnicastDropped) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10000, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  queue_.run_until(1000, clock_);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().packets_out_of_range, 1u);
  EXPECT_EQ(net.stats().packets_sent, 0u);
}

TEST_F(NetworkTest, BroadcastReachesOnlyNodesInRange) {
  Network net(queue_, clock_, cfg_);
  TestNode src(NodeId{1}, {0, 0});
  TestNode near1(NodeId{2}, {100, 0}), near2(NodeId{3}, {0, 400});
  TestNode far(NodeId{4}, {5000, 0});
  for (TestNode* n : {&src, &near1, &near2, &far}) net.add_node(n);
  net.broadcast(NodeId{1}, std::make_shared<TestMessage>());
  queue_.run_until(100, clock_);
  EXPECT_EQ(near1.received.size(), 1u);
  EXPECT_EQ(near2.received.size(), 1u);
  EXPECT_TRUE(far.received.empty());
  EXPECT_TRUE(src.received.empty());  // no self-delivery
  EXPECT_TRUE(near1.received[0].broadcast);
}

TEST_F(NetworkTest, DeregisteredReceiverMissesInFlight) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  net.remove_node(NodeId{2});  // leaves before delivery
  queue_.run_until(100, clock_);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().packets_delivered, 0u);
}

TEST_F(NetworkTest, LossDropsSomePackets) {
  cfg_.loss_probability = 0.5;
  cfg_.seed = 9;
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0});
  net.add_node(&a);
  net.add_node(&b);
  for (int i = 0; i < 200; ++i) {
    net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>());
  }
  queue_.run_until(1000, clock_);
  EXPECT_GT(net.stats().packets_dropped, 50u);
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_EQ(net.stats().packets_dropped + b.received.size(), 200u);
}

TEST_F(NetworkTest, StatsAccounting) {
  Network net(queue_, clock_, cfg_);
  TestNode a(NodeId{1}, {0, 0}), b(NodeId{2}, {10, 0}), c(NodeId{3}, {20, 0});
  for (TestNode* n : {&a, &b, &c}) net.add_node(n);
  net.unicast(NodeId{1}, NodeId{2}, std::make_shared<TestMessage>("plan", 500));
  net.broadcast(NodeId{1}, std::make_shared<TestMessage>("alert", 50));
  queue_.run_until(100, clock_);
  EXPECT_EQ(net.stats().packets_sent, 3u);  // 1 unicast + 2 broadcast copies
  EXPECT_EQ(net.stats().packets_delivered, 3u);
  EXPECT_EQ(net.stats().bytes_sent, 500u + 2 * 50u);
  EXPECT_EQ(net.stats().packets_by_kind.at("plan"), 1u);
  EXPECT_EQ(net.stats().packets_by_kind.at("alert"), 2u);
  net.reset_stats();
  EXPECT_EQ(net.stats().packets_sent, 0u);
}

}  // namespace
}  // namespace nwade::net
