// nwade-stream-v1 wire layer (ctest label: obs): framing round-trips through
// the incremental parser under arbitrary split points, corruption is
// detected rather than misparsed, and the top-level field extractors are not
// fooled by identically named keys inside embedded objects.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/frame.h"

namespace nwade::svc {
namespace {

TEST(Frame, EncodeIsLengthNewlineJsonNewline) {
  EXPECT_EQ(encode_frame("{}"), "2\n{}\n");
  EXPECT_EQ(encode_frame("{\"a\": 1}"), "8\n{\"a\": 1}\n");
}

TEST(Frame, BuilderFixedHeaderOrderAndEscaping) {
  const std::string json = FrameBuilder("hello", 7, 1'500)
                               .field("schema", kStreamSchema)
                               .field("n", std::int64_t{-3})
                               .field("quote", "a\"b\\c\nd")
                               .raw("obj", "{\"x\": 1}")
                               .take();
  EXPECT_EQ(json,
            "{\"kind\": \"hello\", \"seq\": 7, \"t_ms\": 1500, "
            "\"schema\": \"nwade-stream-v1\", \"n\": -3, "
            "\"quote\": \"a\\\"b\\\\c\\nd\", \"obj\": {\"x\": 1}}");
}

TEST(Frame, ParserRoundTripsWholeAndSplitFeeds) {
  const std::vector<std::string> frames = {
      FrameBuilder("a", 0, 0).take(),
      FrameBuilder("b", 1, 100).field("v", std::int64_t{42}).take(),
      FrameBuilder("c", 2, 200).field("s", "x").take(),
  };
  std::string wire;
  for (const auto& f : frames) wire += encode_frame(f);

  // Whole feed.
  {
    FrameParser p;
    p.feed(wire);
    std::string got;
    for (const auto& f : frames) {
      ASSERT_TRUE(p.next(got));
      EXPECT_EQ(got, f);
    }
    EXPECT_FALSE(p.next(got));
    EXPECT_FALSE(p.corrupt());
    EXPECT_EQ(p.pending(), 0u);
  }
  // Byte-at-a-time feed: the parser must never need a whole frame at once.
  {
    FrameParser p;
    std::string got;
    std::size_t popped = 0;
    for (char c : wire) {
      p.feed({&c, 1});
      while (p.next(got)) {
        ASSERT_LT(popped, frames.size());
        EXPECT_EQ(got, frames[popped++]);
      }
    }
    EXPECT_EQ(popped, frames.size());
    EXPECT_FALSE(p.corrupt());
  }
}

TEST(Frame, ParserHoldsPartialTailWithoutCorruption) {
  const std::string frame = encode_frame(FrameBuilder("a", 0, 0).take());
  FrameParser p;
  p.feed(frame.substr(0, frame.size() - 3));
  std::string got;
  EXPECT_FALSE(p.next(got));
  EXPECT_FALSE(p.corrupt());
  p.feed(frame.substr(frame.size() - 3));
  EXPECT_TRUE(p.next(got));
  EXPECT_EQ(got, FrameBuilder("a", 0, 0).take());
}

TEST(Frame, ParserFlagsCorruptStreams) {
  {  // non-digit length prefix
    FrameParser p;
    p.feed("x2\n{}\n");
    std::string got;
    EXPECT_FALSE(p.next(got));
    EXPECT_TRUE(p.corrupt());
    // A corrupt parser stays corrupt even with fresh valid bytes.
    p.feed(encode_frame("{}"));
    EXPECT_FALSE(p.next(got));
  }
  {  // payload not followed by newline
    FrameParser p;
    p.feed("2\n{}X");
    std::string got;
    EXPECT_FALSE(p.next(got));
    EXPECT_TRUE(p.corrupt());
  }
  {  // absurd length prefix must not allocate/buffer forever
    FrameParser p;
    p.feed("99999999999999999999\n");
    std::string got;
    EXPECT_FALSE(p.next(got));
    EXPECT_TRUE(p.corrupt());
  }
  {  // a long run with no newline is not a length prefix
    FrameParser p;
    p.feed(std::string(64, '1'));
    std::string got;
    EXPECT_FALSE(p.next(got));
    EXPECT_TRUE(p.corrupt());
  }
}

TEST(Frame, FieldExtractorsReadTopLevelOnly) {
  const std::string json =
      "{\"kind\": \"metrics\", \"seq\": 7, \"t_ms\": -200, "
      "\"delta\": {\"seq\": 999, \"name\": \"inner\", \"arr\": [1, 2]}, "
      "\"name\": \"outer \\\"q\\\"\", \"after\": 5}";
  EXPECT_EQ(frame_int(json, "seq").value_or(-1), 7);
  EXPECT_EQ(frame_int(json, "t_ms").value_or(0), -200);
  EXPECT_EQ(frame_int(json, "after").value_or(-1), 5);
  EXPECT_EQ(frame_str(json, "kind").value_or(""), "metrics");
  EXPECT_EQ(frame_str(json, "name").value_or(""), "outer \"q\"");
  EXPECT_EQ(frame_raw(json, "delta").value_or(""),
            "{\"seq\": 999, \"name\": \"inner\", \"arr\": [1, 2]}");
  EXPECT_FALSE(frame_int(json, "missing").has_value());
  EXPECT_FALSE(frame_int(json, "kind").has_value());   // not an integer
  EXPECT_FALSE(frame_str(json, "seq").has_value());    // not a string
  EXPECT_FALSE(frame_int(json, "arr").has_value());    // nested key invisible
}

TEST(Frame, BuilderOutputSurvivesItsOwnExtractors) {
  const std::string json = FrameBuilder("health", 12, 3'000)
                               .field("shard", std::int64_t{3})
                               .field("active", std::int64_t{41})
                               .take();
  EXPECT_EQ(frame_str(json, "kind").value_or(""), "health");
  EXPECT_EQ(frame_int(json, "seq").value_or(-1), 12);
  EXPECT_EQ(frame_int(json, "t_ms").value_or(-1), 3'000);
  EXPECT_EQ(frame_int(json, "shard").value_or(-1), 3);
  EXPECT_EQ(frame_int(json, "active").value_or(-1), 41);
}

}  // namespace
}  // namespace nwade::svc
