// TelemetryStreamer determinism contract (ctest label: obs-chaos — the
// sweeps run multi-threaded Worlds/Grids, so the TSan tree vets them):
// streaming is purely observational. With a fake wall clock the emitted
// frame bytes are a pure function of the scenario — byte-identical across
// step_threads, grid_threads, and run_until slicing — the cumulative fold
// of the metric deltas equals the end-of-run MetricsSnapshot export, and a
// checkpoint/restore splices into the stream without a seam.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/grid.h"
#include "sim/world.h"
#include "svc/frame.h"
#include "svc/sink.h"
#include "svc/streamer.h"
#include "util/wall_clock.h"

namespace nwade::svc {
namespace {

using sim::Grid;
using sim::GridConfig;
using sim::ScenarioConfig;
using sim::World;

ScenarioConfig scenario(int step_threads) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 90;
  cfg.duration_ms = 30'000;
  cfg.seed = 11;
  cfg.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  cfg.attack_time = 8'000;
  cfg.trace_enabled = true;  // detection-timeline trace frames must flow
  cfg.step_threads = step_threads;
  return cfg;
}

GridConfig lattice(int grid_threads) {
  GridConfig g;
  g.rows = 2;
  g.cols = 2;
  g.shard.intersection.kind = traffic::IntersectionKind::kCross4;
  g.shard.vehicles_per_minute = 60;
  g.shard.duration_ms = 20'000;
  g.shard.attack_time = 8'000;
  g.shard.trace_enabled = true;
  g.seed = 21;
  g.exchange_every_ms = 500;
  g.gossip_every_ms = 1'000;
  g.grid_threads = grid_threads;
  g.attack_shard = 0;
  g.shard.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  return g;
}

/// Runs one streamed world to completion and returns the raw stream bytes.
/// `slice_ms` controls run_until granularity — emission must not care.
std::string stream_world(const ScenarioConfig& cfg, Duration cadence_ms,
                         Duration slice_ms) {
  World world(cfg);
  util::FakeWallClock wall(777);
  StreamerConfig scfg;
  scfg.cadence_ms = cadence_ms;
  scfg.wall = &wall;
  TelemetryStreamer streamer(scfg);
  RingSink ring(1u << 20);
  streamer.add_sink(&ring);
  EXPECT_TRUE(streamer.attach(world));
  for (Tick t = 0; t < cfg.duration_ms;) {
    t = std::min<Tick>(t + slice_ms, cfg.duration_ms);
    world.run_until(t);
  }
  streamer.finish();
  // The acceptance criterion itself: the fold of every streamed delta IS the
  // end-of-run registry export.
  EXPECT_EQ(streamer.cumulative().json(),
            world.summary().metrics_snapshot.json());
  return ring.joined();
}

TEST(Streamer, WorldFramesByteIdenticalAcrossStepThreadsAndSlicing) {
  const std::string reference = stream_world(scenario(1), 1'000, 1'000);
  ASSERT_FALSE(reference.empty());
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(stream_world(scenario(threads), 1'000, 1'000), reference)
        << "step_threads=" << threads;
  }
  // Odd run_until slicing must not move, add, or drop a single byte.
  EXPECT_EQ(stream_world(scenario(4), 1'000, 700), reference);
  EXPECT_EQ(stream_world(scenario(1), 1'000, 30'000), reference);
}

TEST(Streamer, WorldStreamCarriesDetectionTimelineAndWellFormedFrames) {
  const std::string bytes = stream_world(scenario(1), 1'000, 1'000);
  FrameParser parser;
  parser.feed(bytes);
  std::string json;
  std::uint64_t expected_seq = 0;
  int trace_frames = 0;
  int metrics_frames = 0;
  bool saw_total = false;
  std::string first_kind;
  while (parser.next(json)) {
    const auto seq = frame_int(json, "seq");
    ASSERT_TRUE(seq.has_value()) << json;
    EXPECT_EQ(static_cast<std::uint64_t>(*seq), expected_seq) << json;
    ++expected_seq;
    const std::string kind = frame_str(json, "kind").value_or("");
    if (first_kind.empty()) first_kind = kind;
    if (kind == "trace") ++trace_frames;
    if (kind == "metrics") ++metrics_frames;
    if (kind == "metrics_total") saw_total = true;
  }
  EXPECT_FALSE(parser.corrupt());
  EXPECT_EQ(parser.pending(), 0u);
  EXPECT_EQ(first_kind, "hello");
  // A V1 deviator past attack_time must produce nwade timeline events.
  EXPECT_GT(trace_frames, 0);
  EXPECT_EQ(metrics_frames, 30);  // one delta per cadence point
  EXPECT_TRUE(saw_total);
}

TEST(Streamer, FinalTotalFrameEqualsEndOfRunExport) {
  World world(scenario(1));
  StreamerConfig scfg;
  scfg.cadence_ms = 1'000;
  TelemetryStreamer streamer(scfg);
  RingSink ring(1u << 20);
  streamer.add_sink(&ring);
  ASSERT_TRUE(streamer.attach(world));
  world.run_until(world.config().duration_ms);
  streamer.finish();
  std::string total_snapshot;
  FrameParser parser;
  parser.feed(ring.joined());
  std::string json;
  while (parser.next(json)) {
    if (frame_str(json, "kind").value_or("") == "metrics_total") {
      total_snapshot = frame_raw(json, "snapshot").value_or("");
    }
  }
  EXPECT_EQ(total_snapshot, world.summary().metrics_snapshot.json_compact());
}

TEST(Streamer, RejectsOffLatticeCadence) {
  World world(scenario(1));
  StreamerConfig scfg;
  scfg.cadence_ms = 150;  // not a multiple of step_ms = 100
  TelemetryStreamer streamer(scfg);
  EXPECT_FALSE(streamer.attach(world));
  scfg.cadence_ms = 0;
  TelemetryStreamer zero(scfg);
  EXPECT_FALSE(zero.attach(world));

  Grid grid(lattice(1));
  StreamerConfig gcfg;
  gcfg.cadence_ms = 750;  // not a multiple of exchange_every_ms = 500
  TelemetryStreamer gstreamer(gcfg);
  EXPECT_FALSE(gstreamer.attach(grid));
}

std::string stream_grid(const GridConfig& cfg, Duration cadence_ms,
                        Duration slice_ms) {
  Grid grid(cfg);
  util::FakeWallClock wall(777);
  StreamerConfig scfg;
  scfg.cadence_ms = cadence_ms;
  scfg.wall = &wall;
  TelemetryStreamer streamer(scfg);
  RingSink ring(1u << 20);
  streamer.add_sink(&ring);
  EXPECT_TRUE(streamer.attach(grid));
  const Tick duration = cfg.shard.duration_ms;
  for (Tick t = 0; t < duration;) {
    t = std::min<Tick>(t + slice_ms, duration);
    grid.run_until(t);
  }
  streamer.finish();
  EXPECT_EQ(streamer.cumulative().json(), grid.merged_metrics().json());
  return ring.joined();
}

TEST(Streamer, GridFramesByteIdenticalAcrossGridThreadsAndSlicing) {
  const std::string reference = stream_grid(lattice(1), 1'000, 1'000);
  ASSERT_FALSE(reference.empty());
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(stream_grid(lattice(threads), 1'000, 1'000), reference)
        << "grid_threads=" << threads;
  }
  EXPECT_EQ(stream_grid(lattice(2), 1'000, 700), reference);

  // Sanity on content: per-shard health rows and grid status frames flow.
  FrameParser parser;
  parser.feed(reference);
  std::string json;
  int health = 0;
  int status = 0;
  while (parser.next(json)) {
    const std::string kind = frame_str(json, "kind").value_or("");
    if (kind == "health") ++health;
    if (kind == "status") ++status;
  }
  EXPECT_EQ(health, 4 * 20);  // 4 shards x one row per cadence point
  EXPECT_EQ(status, 20);
}

TEST(Streamer, CheckpointRestoreContinuesStreamWithoutSeam) {
  const ScenarioConfig cfg = scenario(1);
  const Duration cadence = 1'000;
  const Tick cut = 10'000;  // a cadence point: serve checkpoints only there

  // Uninterrupted reference stream.
  const std::string reference = stream_world(cfg, cadence, 1'000);

  // First half: stream to the cut, checkpoint, remember stream position.
  std::string first_half;
  Bytes blob;
  std::uint64_t seq = 0;
  std::uint64_t frames = 0;
  {
    World world(cfg);
    util::FakeWallClock wall(777);
    StreamerConfig scfg;
    scfg.cadence_ms = cadence;
    scfg.wall = &wall;
    TelemetryStreamer streamer(scfg);
    RingSink ring(1u << 20);
    streamer.add_sink(&ring);
    ASSERT_TRUE(streamer.attach(world));
    world.run_until(cut);
    blob = world.checkpoint_save();
    seq = streamer.next_seq();
    frames = streamer.frames_emitted();
    first_half = ring.joined();
  }

  // Second half: restore, resume the stream at the recorded position.
  std::string second_half;
  {
    std::string error;
    std::unique_ptr<World> world = World::checkpoint_restore(blob, &error);
    ASSERT_NE(world, nullptr) << error;
    util::FakeWallClock wall(777);
    StreamerConfig scfg;
    scfg.cadence_ms = cadence;
    scfg.wall = &wall;
    TelemetryStreamer streamer(scfg);
    RingSink ring(1u << 20);
    streamer.add_sink(&ring);
    streamer.set_next_seq(seq);
    streamer.set_frames_emitted(frames);
    ASSERT_TRUE(streamer.attach(*world, /*resume=*/true));
    world->run_until(cfg.duration_ms);
    streamer.finish();
    second_half = ring.joined();
  }

  EXPECT_EQ(first_half + second_half, reference);
}

TEST(Streamer, CatchUpBringsLateJoinerToCurrentState) {
  World world(scenario(1));
  StreamerConfig scfg;
  scfg.cadence_ms = 1'000;
  TelemetryStreamer streamer(scfg);
  RingSink ring(1u << 20);
  streamer.add_sink(&ring);
  ASSERT_TRUE(streamer.attach(world));
  world.run_until(5'000);

  const std::string catch_up = streamer.catch_up();
  FrameParser parser;
  parser.feed(catch_up);
  std::string json;
  ASSERT_TRUE(parser.next(json));
  EXPECT_EQ(frame_str(json, "kind").value_or(""), "hello");
  ASSERT_TRUE(parser.next(json));
  EXPECT_EQ(frame_str(json, "kind").value_or(""), "metrics_total");
  EXPECT_EQ(frame_int(json, "t_ms").value_or(-1), 5'000);
  EXPECT_EQ(frame_raw(json, "snapshot").value_or(""),
            streamer.cumulative().json_compact());
  EXPECT_FALSE(parser.next(json));
  EXPECT_FALSE(parser.corrupt());
}

TEST(Streamer, MultipleSinksReceiveIdenticalBytes) {
  World world(scenario(1));
  StreamerConfig scfg;
  scfg.cadence_ms = 1'000;
  TelemetryStreamer streamer(scfg);
  RingSink a(1u << 20);
  RingSink b(1u << 20);
  streamer.add_sink(&a);
  streamer.add_sink(&b);
  ASSERT_TRUE(streamer.attach(world));
  world.run_until(5'000);
  streamer.finish();
  EXPECT_FALSE(a.joined().empty());
  EXPECT_EQ(a.joined(), b.joined());
}

}  // namespace
}  // namespace nwade::svc
