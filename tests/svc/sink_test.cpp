// Stream sinks (ctest label: obs-chaos — the TCP test moves real bytes over
// loopback): ring bounding, file tailing, and the non-blocking TCP broadcast
// server including late-joiner greetings and slow-consumer drops.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/frame.h"
#include "svc/sink.h"

namespace nwade::svc {
namespace {

TEST(RingSink, KeepsLastNFramesAndCountsDrops) {
  RingSink ring(2);
  ring.write("a\n");
  ring.write("b\n");
  EXPECT_EQ(ring.joined(), "a\nb\n");
  EXPECT_EQ(ring.dropped(), 0u);
  ring.write("c\n");
  EXPECT_EQ(ring.joined(), "b\nc\n");
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(FileSink, AppendContinuesTruncateRestarts) {
  const std::string path = ::testing::TempDir() + "sink_test.stream";
  {
    FileSink s(path);
    ASSERT_TRUE(s.ok());
    s.write("one\n");
  }
  {
    FileSink s(path, /*append=*/true);
    ASSERT_TRUE(s.ok());
    s.write("two\n");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "one\ntwo\n");
  {
    FileSink s(path);  // truncate mode starts the stream over
    s.write("three\n");
  }
  f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  const std::size_t n2 = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n2), "three\n");
  std::remove(path.c_str());
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drains up to `want` bytes with a bounded number of pump/read rounds.
std::string read_bytes(TcpServerSink& sink, int fd, std::size_t want) {
  std::string out;
  char buf[4096];
  for (int round = 0; round < 200 && out.size() < want; ++round) {
    sink.pump();
    const long n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(TcpServerSink, BroadcastsFramesAndGreetsLateJoiners) {
  TcpServerSink sink(0);  // ephemeral port
  ASSERT_TRUE(sink.ok());
  ASSERT_GT(sink.port(), 0);
  sink.set_greeting([] { return std::string("greeting\n"); });

  const int a = connect_loopback(sink.port());
  ASSERT_GE(a, 0);
  sink.pump();  // accept
  EXPECT_EQ(sink.client_count(), 1);

  const std::string f1 = encode_frame("{\"n\": 1}");
  sink.write(f1);
  EXPECT_EQ(read_bytes(sink, a, std::string("greeting\n").size() + f1.size()),
            "greeting\n" + f1);

  // A client that joins mid-stream gets the greeting, then only new frames.
  const int b = connect_loopback(sink.port());
  ASSERT_GE(b, 0);
  const std::string f2 = encode_frame("{\"n\": 2}");
  sink.write(f2);  // write() also accepts pending connections
  EXPECT_EQ(sink.client_count(), 2);
  EXPECT_EQ(read_bytes(sink, b, std::string("greeting\n").size() + f2.size()),
            "greeting\n" + f2);
  EXPECT_EQ(read_bytes(sink, a, f2.size()), f2);

  EXPECT_EQ(sink.clients_accepted(), 2u);
  EXPECT_EQ(sink.clients_dropped(), 0u);
  ::close(a);
  ::close(b);
}

TEST(TcpServerSink, DropsStalledClientInsteadOfBlocking) {
  TcpServerSink sink(0, /*max_backlog_bytes=*/1024);
  ASSERT_TRUE(sink.ok());
  const int fd = connect_loopback(sink.port());
  ASSERT_GE(fd, 0);
  sink.pump();
  ASSERT_EQ(sink.client_count(), 1);
  // Never read from fd: the socket buffers fill, then the sink-side backlog
  // exceeds its cap and the client is dropped. write() must stay prompt
  // throughout — this loop hanging IS the failure mode under test.
  const std::string frame = encode_frame(std::string(4096, 'x'));
  for (int i = 0; i < 4096 && sink.client_count() > 0; ++i) sink.write(frame);
  EXPECT_EQ(sink.client_count(), 0);
  EXPECT_EQ(sink.clients_dropped(), 1u);
  ::close(fd);
}

TEST(TcpServerSink, PeerDisconnectIsDetectedOnWrite) {
  TcpServerSink sink(0);
  ASSERT_TRUE(sink.ok());
  const int fd = connect_loopback(sink.port());
  ASSERT_GE(fd, 0);
  sink.pump();
  ASSERT_EQ(sink.client_count(), 1);
  ::close(fd);
  const std::string frame = encode_frame("{}");
  // First write may land in the kernel buffer of the dying socket; within a
  // couple of writes the peer reset must surface and the client go away.
  for (int i = 0; i < 10 && sink.client_count() > 0; ++i) sink.write(frame);
  EXPECT_EQ(sink.client_count(), 0);
}

}  // namespace
}  // namespace nwade::svc
