// Allocation gates for the crypto hot paths (ctest label: alloc).
//
// These tests meter the thread-local heap-allocation counter across a warmed
// steady-state operation and assert the delta is exactly zero — turning the
// "hot paths do not allocate" property from a claim into a regression test.
// They only measure in builds configured with -DNWADE_COUNT_ALLOCS=ON; in
// the default build (no counting operator new) they skip, so tier-1 runs
// stay green either way.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "crypto/signer.h"
#include "crypto/verify_cache.h"
#include "util/alloc_stats.h"
#include "util/rng.h"

namespace nwade::crypto {
namespace {

#define REQUIRE_COUNTING()                                              \
  if (!util::alloc_counting_enabled()) {                                \
    GTEST_SKIP() << "build with -DNWADE_COUNT_ALLOCS=ON to arm this gate"; \
  }

/// One RSA-2048 key pair for the whole binary (keygen is seconds, the gates
/// are microseconds).
const RsaKeyPair& test_key() {
  static const RsaKeyPair kp = [] {
    Rng rng(0xA110C47E5EED);
    return rsa_generate(rng, 2048);
  }();
  return kp;
}

BigUint random_odd_modulus(Rng& rng, int bits) {
  BigUint m = BigUint::random_bits(rng, bits);
  if (!m.is_odd()) m = m + BigUint(1);
  return m;
}

TEST(AllocGate, SteadyStateMontMulIsAllocationFree) {
  REQUIRE_COUNTING();
  Rng rng(1);
  const Montgomery mont(random_odd_modulus(rng, 2048));
  const std::size_t n = mont.limbs();
  std::vector<std::uint64_t> a(n), b(n), dst(n), scratch(n + 2);
  for (auto& l : a) l = rng.next_u64();
  for (auto& l : b) l = rng.next_u64();
  a[n - 1] = 0;  // keep operands < modulus (msb of the modulus is set)
  b[n - 1] = 0;
  mont.mont_mul(dst.data(), a.data(), b.data(), scratch.data());  // warm-up

  const std::uint64_t before = util::thread_alloc_count();
  for (int i = 0; i < 100; ++i) {
    mont.mont_mul(dst.data(), dst.data(), b.data(), scratch.data());
  }
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
}

TEST(AllocGate, SteadyStateMontPowIsAllocationFree) {
  REQUIRE_COUNTING();
  Rng rng(2);
  const Montgomery mont(random_odd_modulus(rng, 2048));
  MontWorkspace ws;
  const BigUint base = BigUint::random_bits(rng, 2040);
  const BigUint exp = BigUint::random_bits(rng, 256);
  (void)mont.pow(base, exp, ws);  // grows the workspace once

  const std::uint64_t before = util::thread_alloc_count();
  const BigUint r = mont.pow(base, exp, ws);
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
  EXPECT_FALSE(r.is_zero());
}

TEST(AllocGate, CacheHitRsa2048VerifyIsAllocationFree) {
  REQUIRE_COUNTING();
  const RsaKeyPair& kp = test_key();
  RsaSigner signer(kp);
  const Bytes msg = {'g', 'a', 't', 'e'};
  const Bytes sig = signer.sign(msg);
  const auto verifier = signer.verifier();
  ASSERT_TRUE(verifier->verify(msg, sig));  // miss: computes + populates

  const std::uint64_t before = util::thread_alloc_count();
  const bool ok = verifier->verify(msg, sig);  // hit: key_of + shard lookup
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
  EXPECT_TRUE(ok);
}

TEST(AllocGate, VerifyCacheKeyOfIsAllocationFree) {
  REQUIRE_COUNTING();
  Digest fp{};
  const Bytes msg(128, 0xAB);
  const Bytes sig(256, 0xCD);
  (void)SigVerifyCache::key_of(fp, msg, sig);  // warm-up

  const std::uint64_t before = util::thread_alloc_count();
  const Digest key = SigVerifyCache::key_of(fp, msg, sig);
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
  EXPECT_NE(key, Digest{});
}

TEST(AllocGate, InlineBigUintArithmeticIsAllocationFree) {
  REQUIRE_COUNTING();
  Rng rng(3);
  // Everything here stays within the 2048-bit + carry inline capacity:
  // 2048-bit add/sub, 1024x1024 mul, 2048/1024 divmod.
  const BigUint a = BigUint::random_bits(rng, 2048);
  const BigUint b = BigUint::random_bits(rng, 2047);
  const BigUint c = BigUint::random_bits(rng, 1024);
  const BigUint d = BigUint::random_bits(rng, 1024);

  const std::uint64_t before = util::thread_alloc_count();
  const BigUint sum = a + b;
  const BigUint diff = a - b;
  const BigUint prod = c * d;
  const auto [q, r] = a.divmod(c);
  const int cmp = sum.compare(diff);
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
  EXPECT_NE(cmp, 0);
  EXPECT_EQ(q * c + r, a);
  EXPECT_FALSE(prod.is_zero());
}

}  // namespace
}  // namespace nwade::crypto
