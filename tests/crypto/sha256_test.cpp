// SHA-256 and HMAC-SHA256 against FIPS/RFC known-answer vectors.
#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace nwade::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // Messages of length 55/56/63/64/65 hit distinct padding paths.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    for (char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(a.finish(), b.finish()) << "len " << len;
  }
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const Digest mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(key.data()),
                                    key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                    msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);  // > block size, RFC 4231 case 6 key shape
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace nwade::crypto
