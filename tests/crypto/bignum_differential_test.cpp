// Randomized differential suite for BigUint.
//
// The small-buffer-optimized limb storage replaced std::vector wholesale, so
// this suite pins the new arithmetic against a retained reference
// implementation: the pre-SBO schoolbook routines, re-expressed here over a
// plain std::vector<u64> exactly as the seed tree computed them. Every
// operation runs in lock-step on random operand pairs whose sizes straddle
// the inline capacity (33 limbs = 2048 bits + carry), including the
// inline→heap spill edge and asymmetric pairs, so a bug in grow/steal/assign
// or in any ported loop shows up as a mismatch, not as silent corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "crypto/bignum.h"
#include "util/rng.h"

namespace nwade::crypto {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// --- reference path: the seed's vector-based limb arithmetic -----------------

namespace ref {

using Limbs = std::vector<u64>;  // little-endian, normalized

void trim(Limbs& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

int compare(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int bit_length(const Limbs& a) {
  if (a.empty()) return 0;
  int top = 64;
  for (u64 v = a.back(); (v >> 63) == 0; v <<= 1) --top;
  return static_cast<int>((a.size() - 1) * 64) + top;
}

Limbs add(const Limbs& a, const Limbs& b) {
  const std::size_t n = std::max(a.size(), b.size());
  Limbs out(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 ai = i < a.size() ? a[i] : 0;
    const u64 bi = i < b.size() ? b[i] : 0;
    const u128 sum = static_cast<u128>(ai) + bi + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out[n] = carry;
  trim(out);
  return out;
}

Limbs sub(const Limbs& a, const Limbs& b) {  // requires a >= b
  Limbs out(a.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const u64 rhs = i < b.size() ? b[i] : 0;
    u64 diff = a[i] - rhs;
    const u64 borrow_next = (a[i] < rhs) || (diff < borrow) ? 1 : 0;
    diff -= borrow;
    out[i] = diff;
    borrow = borrow_next;
  }
  trim(out);
  return out;
}

Limbs mul(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  trim(out);
  return out;
}

Limbs shl(const Limbs& a, int bits) {
  if (a.empty() || bits == 0) return a;
  const int limb_shift = bits / 64;
  const int bit_shift = bits % 64;
  Limbs out(a.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i + limb_shift] |= a[i] << bit_shift;
    if (bit_shift != 0) out[i + limb_shift + 1] |= a[i] >> (64 - bit_shift);
  }
  trim(out);
  return out;
}

Limbs shr(const Limbs& a, int bits) {
  if (a.empty() || bits == 0) return a;
  const std::size_t limb_shift = static_cast<std::size_t>(bits) / 64;
  const int bit_shift = bits % 64;
  if (limb_shift >= a.size()) return {};
  Limbs out(a.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.size()) {
      out[i] |= a[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  trim(out);
  return out;
}

std::pair<Limbs, Limbs> divmod(const Limbs& a, const Limbs& d) {
  if (compare(a, d) < 0) return {{}, a};
  if (d.size() == 1) {
    Limbs q(a.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | a[i];
      q[i] = static_cast<u64>(cur / d[0]);
      rem = cur % d[0];
    }
    trim(q);
    Limbs r;
    if (rem != 0) r.push_back(static_cast<u64>(rem));
    return {q, r};
  }
  const int shift = bit_length(a) - bit_length(d);
  Limbs rem = a;
  Limbs den = shl(d, shift);
  Limbs quo(static_cast<std::size_t>(shift) / 64 + 1, 0);
  for (int i = shift; i >= 0; --i) {
    if (compare(rem, den) >= 0) {
      rem = sub(rem, den);
      quo[static_cast<std::size_t>(i) / 64] |= 1ULL << (i % 64);
    }
    den = shr(den, 1);
  }
  trim(quo);
  return {quo, rem};
}

Limbs from_bytes(const Bytes& be) {
  Limbs out((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::size_t bit = 8 * (be.size() - 1 - i);
    out[bit / 64] |= static_cast<u64>(be[i]) << (bit % 64);
  }
  trim(out);
  return out;
}

}  // namespace ref

// --- lock-step harness --------------------------------------------------------

/// Converts a BigUint to reference limbs for comparison.
ref::Limbs limbs_of(const BigUint& x) {
  ref::Limbs out(x.limb_count());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = x.limb(i);
  return out;
}

/// One operand drawn as (BigUint, reference) from identical random bytes.
struct Pair {
  BigUint b;
  ref::Limbs r;
};

/// Byte lengths chosen to straddle the 33-limb inline capacity from both
/// sides: comfortably inline, exactly at the 2048-bit edge, one bit past it
/// (the first value that must spill once a carry limb rides along), and far
/// beyond (key-generation-sized).
constexpr std::size_t kByteLens[] = {0, 1, 8, 63, 64, 255, 256,
                                     257, 264, 265, 272, 511, 512};

Pair random_pair(Rng& rng) {
  const std::size_t len = kByteLens[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(std::size(kByteLens)) - 1))];
  Bytes bytes(len);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  if (rng.chance(0.1) && !bytes.empty()) bytes[0] = 0;  // leading zeros
  return Pair{BigUint::from_bytes(bytes), ref::from_bytes(bytes)};
}

TEST(BigUintDifferential, ArithmeticLockStepOnRandomPairs) {
  Rng rng(0xD1FF);
  for (int i = 0; i < 10000; ++i) {
    const Pair x = random_pair(rng);
    const Pair y = random_pair(rng);

    EXPECT_EQ(limbs_of(x.b + y.b), ref::add(x.r, y.r)) << "add, iter " << i;
    EXPECT_EQ(limbs_of(x.b * y.b), ref::mul(x.r, y.r)) << "mul, iter " << i;
    EXPECT_EQ(x.b.compare(y.b), ref::compare(x.r, y.r)) << "cmp, iter " << i;
    if (x.b >= y.b) {
      EXPECT_EQ(limbs_of(x.b - y.b), ref::sub(x.r, y.r)) << "sub, iter " << i;
    } else {
      EXPECT_EQ(limbs_of(y.b - x.b), ref::sub(y.r, x.r)) << "sub, iter " << i;
    }
    const int sh = static_cast<int>(rng.uniform_int(0, 200));
    EXPECT_EQ(limbs_of(x.b << sh), ref::shl(x.r, sh)) << "shl, iter " << i;
    EXPECT_EQ(limbs_of(x.b >> sh), ref::shr(x.r, sh)) << "shr, iter " << i;
  }
}

TEST(BigUintDifferential, DivmodLockStepOnRandomPairs) {
  Rng rng(0xD1FD);
  int done = 0;
  while (done < 1000) {
    const Pair x = random_pair(rng);
    const Pair y = random_pair(rng);
    if (y.b.is_zero()) continue;
    ++done;
    const auto [q, r] = x.b.divmod(y.b);
    const auto [rq, rr] = ref::divmod(x.r, y.r);
    EXPECT_EQ(limbs_of(q), rq) << "quotient, iter " << done;
    EXPECT_EQ(limbs_of(r), rr) << "remainder, iter " << done;
  }
}

TEST(BigUintDifferential, SpillEdgeCrossings) {
  // Deterministic walk across the inline→heap boundary: values of exactly
  // 2047/2048/2049/2112/2113 bits, squared and shifted so results land on
  // both sides of the 33-limb capacity, plus the carry-limb edge (a sum of
  // two full 2048-bit values still fits inline; the product does not).
  Rng rng(0x5B0);
  for (const int bits : {2047, 2048, 2049, 2112, 2113, 4096}) {
    const BigUint a = BigUint::random_bits(rng, bits);
    const ref::Limbs ar = limbs_of(a);
    EXPECT_EQ(limbs_of(a + a), ref::add(ar, ar)) << bits << " bits";
    EXPECT_EQ(limbs_of(a * a), ref::mul(ar, ar)) << bits << " bits";
    EXPECT_EQ(limbs_of(a << 64), ref::shl(ar, 64)) << bits << " bits";
    EXPECT_EQ(limbs_of((a * a) >> bits), ref::shr(ref::mul(ar, ar), bits))
        << bits << " bits";
    const auto [q, r] = (a * a).divmod(a);
    EXPECT_EQ(limbs_of(q), ar) << bits << " bits";
    EXPECT_TRUE(r.is_zero()) << bits << " bits";
  }
}

TEST(BigUintDifferential, FromToBytesRoundTripFuzz) {
  Rng rng(0xB17E5);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 600));
    Bytes bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const std::size_t lead = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std::min<std::size_t>(len, 9))));
    for (std::size_t j = 0; j < lead; ++j) bytes[j] = 0;

    const BigUint v = BigUint::from_bytes(bytes);
    // Minimal form drops exactly the leading zeros.
    std::size_t first = 0;
    while (first < len && bytes[first] == 0) ++first;
    const Bytes minimal(bytes.begin() + static_cast<std::ptrdiff_t>(first),
                        bytes.end());
    EXPECT_EQ(v.to_bytes(), minimal) << "iter " << i;
    // Padded back to the original length, the round trip is the identity.
    EXPECT_EQ(v.to_bytes(len), bytes) << "iter " << i;
    // And the value survives a second parse.
    EXPECT_EQ(BigUint::from_bytes(v.to_bytes(len)), v) << "iter " << i;
  }
}

}  // namespace
}  // namespace nwade::crypto
