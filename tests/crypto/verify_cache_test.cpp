// SigVerifyCache contract: pure-function memoization with exact hit/miss
// accounting, FIFO bounded capacity, and key-rotation safety. Plus the
// RsaVerifyContext fast path, which must agree with rsa_verify bit-for-bit.
#include <gtest/gtest.h>

#include "crypto/rsa.h"
#include "crypto/signer.h"
#include "crypto/verify_cache.h"
#include "util/rng.h"

namespace nwade::crypto {
namespace {

Digest digest_of(std::uint8_t fill) {
  Digest d{};
  d.fill(fill);
  return d;
}

TEST(SigVerifyCache, HitAndMissAccounting) {
  SigVerifyCache cache(8);
  const Digest k1 = digest_of(1);
  EXPECT_FALSE(cache.lookup(k1).has_value());
  cache.store(k1, true);
  const auto hit = cache.lookup(k1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);

  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SigVerifyCache, NegativeVerdictsAreCachedToo) {
  SigVerifyCache cache(8);
  cache.store(digest_of(2), false);
  const auto hit = cache.lookup(digest_of(2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(*hit);
}

TEST(SigVerifyCache, FifoEvictionKeepsSizeBounded) {
  SigVerifyCache cache(4);
  for (std::uint8_t i = 0; i < 10; ++i) cache.store(digest_of(i), true);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  // Oldest six gone, newest four retained.
  EXPECT_FALSE(cache.lookup(digest_of(0)).has_value());
  EXPECT_FALSE(cache.lookup(digest_of(5)).has_value());
  EXPECT_TRUE(cache.lookup(digest_of(6)).has_value());
  EXPECT_TRUE(cache.lookup(digest_of(9)).has_value());
}

TEST(SigVerifyCache, CapacityZeroDisablesCaching) {
  SigVerifyCache cache(0);
  cache.store(digest_of(3), true);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(digest_of(3)).has_value());
}

TEST(SigVerifyCache, ShrinkingCapacityEvictsImmediately) {
  SigVerifyCache cache(8);
  for (std::uint8_t i = 0; i < 8; ++i) cache.store(digest_of(i), true);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(digest_of(7)).has_value());
  EXPECT_FALSE(cache.lookup(digest_of(0)).has_value());
}

TEST(SigVerifyCache, KeyOfSeparatesEveryInput) {
  const Bytes msg_a{1, 2, 3};
  const Bytes msg_b{1, 2, 4};
  const Bytes sig_a{9, 9};
  const Bytes sig_b{9, 8};
  const Digest fp_a = digest_of(10);
  const Digest fp_b = digest_of(11);

  const Digest base = SigVerifyCache::key_of(fp_a, msg_a, sig_a);
  EXPECT_EQ(base, SigVerifyCache::key_of(fp_a, msg_a, sig_a));
  EXPECT_NE(base, SigVerifyCache::key_of(fp_b, msg_a, sig_a));  // key rotated
  EXPECT_NE(base, SigVerifyCache::key_of(fp_a, msg_b, sig_a));  // msg tampered
  EXPECT_NE(base, SigVerifyCache::key_of(fp_a, msg_a, sig_b));  // sig tampered
  // Shifting a byte across the msg/sig boundary must change the key: the
  // encoding length-prefixes the message.
  const Bytes msg_long{1, 2, 3, 9};
  const Bytes sig_short{9};
  EXPECT_NE(SigVerifyCache::key_of(fp_a, msg_a, sig_a),
            SigVerifyCache::key_of(fp_a, msg_long, sig_short));
}

class RsaVerifyContextTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(424242);
    key_pair_ = new RsaKeyPair(rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_pair_;
    key_pair_ = nullptr;
  }
  static RsaKeyPair* key_pair_;
};

RsaKeyPair* RsaVerifyContextTest::key_pair_ = nullptr;

TEST_F(RsaVerifyContextTest, AgreesWithRsaVerify) {
  const RsaVerifyContext ctx(key_pair_->pub);
  const Bytes msg{'h', 'e', 'l', 'l', 'o'};
  const Bytes sig = rsa_sign(key_pair_->priv, msg);

  EXPECT_TRUE(ctx.verify(msg, sig));
  EXPECT_TRUE(rsa_verify(key_pair_->pub, msg, sig));

  Bytes tampered_sig = sig;
  tampered_sig[0] ^= 1;
  EXPECT_EQ(ctx.verify(msg, tampered_sig),
            rsa_verify(key_pair_->pub, msg, tampered_sig));
  EXPECT_FALSE(ctx.verify(msg, tampered_sig));

  const Bytes other_msg{'h', 'e', 'l', 'l', 'O'};
  EXPECT_FALSE(ctx.verify(other_msg, sig));

  const Bytes short_sig(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(ctx.verify(msg, short_sig));
  EXPECT_FALSE(rsa_verify(key_pair_->pub, msg, short_sig));
}

TEST_F(RsaVerifyContextTest, FingerprintChangesWithKey) {
  Rng rng(77);
  const RsaKeyPair other = rsa_generate(rng, 512);
  const RsaVerifyContext a(key_pair_->pub);
  const RsaVerifyContext b(other.pub);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), RsaVerifyContext(key_pair_->pub).fingerprint());
}

TEST_F(RsaVerifyContextTest, RsaVerifierPopulatesProcessCache) {
  auto& cache = SigVerifyCache::instance();
  cache.clear();
  cache.reset_stats();

  const RsaSigner signer(*key_pair_);
  const auto verifier = signer.verifier();
  const Bytes msg{'b', 'l', 'o', 'c', 'k'};
  const Bytes sig = signer.sign(msg);

  EXPECT_TRUE(verifier->verify(msg, sig));   // miss -> modexp -> store
  EXPECT_TRUE(verifier->verify(msg, sig));   // hit
  EXPECT_TRUE(verifier->verify(msg, sig));   // hit
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);

  // A second verifier for the SAME key shares the entries (fingerprint
  // equality), which is exactly the N-receivers-one-modexp effect.
  const auto verifier2 = RsaSigner(*key_pair_).verifier();
  EXPECT_TRUE(verifier2->verify(msg, sig));
  EXPECT_EQ(cache.stats().hits, 3u);

  // A different key never aliases: same msg/sig, fresh fingerprint -> miss.
  Rng rng(88);
  const RsaSigner other(rsa_generate(rng, 512));
  EXPECT_FALSE(other.verifier()->verify(msg, sig));
  EXPECT_EQ(cache.stats().misses, 2u);

  cache.clear();
  cache.reset_stats();
}

}  // namespace
}  // namespace nwade::crypto
