// Merkle tree: roots, proofs, domain separation, and tamper detection.
#include "crypto/merkle.h"

#include <gtest/gtest.h>

namespace nwade::crypto {
namespace {

Bytes leaf(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

std::vector<Bytes> make_leaves(std::size_t n) {
  std::vector<Bytes> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(leaf("plan-" + std::to_string(i)));
  return out;
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), MerkleTree::hash_leaf(leaves[0]));
}

TEST(Merkle, EmptyTreeHasStableRoot) {
  MerkleTree a({}), b({});
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 0u);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Digest original = MerkleTree(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].push_back(0xff);
    EXPECT_NE(MerkleTree(mutated).root(), original) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  const Digest original = MerkleTree(leaves).root();
  std::swap(leaves[0], leaves[3]);
  EXPECT_NE(MerkleTree(leaves).root(), original);
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = t.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, t.root())) << "leaf " << i;
  }
}

TEST_P(MerkleProofTest, ProofForWrongLeafFails) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  const MerkleProof proof = t.prove(0);
  EXPECT_FALSE(MerkleTree::verify(leaves[1], proof, t.root()));
}

TEST_P(MerkleProofTest, TamperedProofFails) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  MerkleProof proof = t.prove(n / 2);
  if (proof.empty()) return;
  proof[0].sibling[0] ^= 0x01;
  EXPECT_FALSE(MerkleTree::verify(leaves[n / 2], proof, t.root()));
}

// Covers power-of-two, odd, and prime leaf counts (odd-node duplication path).
INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 33, 100));

TEST(Merkle, LeafCannotPoseAsInterior) {
  // Domain separation: an interior node's bytes used as a leaf must not
  // produce the same digest path.
  const auto leaves = make_leaves(2);
  MerkleTree t(leaves);
  // interior = H(0x01 || h0 || h1); a "leaf" with those 64 bytes hashes with
  // a 0x00 prefix and cannot equal the root.
  Bytes fake;
  const Digest h0 = MerkleTree::hash_leaf(leaves[0]);
  const Digest h1 = MerkleTree::hash_leaf(leaves[1]);
  fake.insert(fake.end(), h0.begin(), h0.end());
  fake.insert(fake.end(), h1.begin(), h1.end());
  EXPECT_NE(MerkleTree::hash_leaf(fake), t.root());
}

TEST(Merkle, DeterministicRoot) {
  const auto leaves = make_leaves(10);
  EXPECT_EQ(MerkleTree(leaves).root(), MerkleTree(leaves).root());
}

}  // namespace
}  // namespace nwade::crypto
