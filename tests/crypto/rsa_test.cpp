// RSA keygen / sign / verify, including tamper-detection and CRT consistency.
#include "crypto/rsa.h"

#include <gtest/gtest.h>

namespace nwade::crypto {
namespace {

Bytes msg_bytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

class RsaTest : public ::testing::Test {
 protected:
  // 512-bit keys keep unit tests fast; the blockchain benchmark exercises 2048.
  static void SetUpTestSuite() {
    Rng rng(2022);
    key_ = new RsaKeyPair(rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static const RsaKeyPair& key() { return *key_; }

 private:
  static RsaKeyPair* key_;
};

RsaKeyPair* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyStructure) {
  EXPECT_EQ(key().pub.n.bit_length(), 512);
  EXPECT_EQ(key().pub.e, BigUint(65537));
  EXPECT_EQ(key().priv.p * key().priv.q, key().pub.n);
  EXPECT_TRUE(key().priv.p > key().priv.q);
  // e*d = 1 mod phi
  const BigUint phi = (key().priv.p - BigUint(1)) * (key().priv.q - BigUint(1));
  EXPECT_EQ((key().pub.e * key().priv.d) % phi, BigUint(1));
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes m = msg_bytes("travel plan block 42");
  const Bytes sig = rsa_sign(key().priv, m);
  EXPECT_EQ(sig.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, m, sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  const Bytes m = msg_bytes("original");
  const Bytes sig = rsa_sign(key().priv, m);
  EXPECT_FALSE(rsa_verify(key().pub, msg_bytes("0riginal"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  const Bytes m = msg_bytes("message");
  Bytes sig = rsa_sign(key().priv, m);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key().pub, m, sig));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  const Bytes m = msg_bytes("message");
  Bytes sig = rsa_sign(key().priv, m);
  sig.push_back(0);
  EXPECT_FALSE(rsa_verify(key().pub, m, sig));
  sig.resize(sig.size() - 2);
  EXPECT_FALSE(rsa_verify(key().pub, m, sig));
}

TEST_F(RsaTest, SignatureLargerThanModulusRejected) {
  const Bytes m = msg_bytes("message");
  const Bytes sig = key().pub.n.to_bytes(key().pub.modulus_bytes());  // sig == n
  EXPECT_FALSE(rsa_verify(key().pub, m, sig));
}

TEST_F(RsaTest, CrtMatchesPlainExponentiation) {
  const Bytes m = msg_bytes("crt cross-check");
  const Bytes sig = rsa_sign(key().priv, m);
  // Recompute without CRT: s = em^d mod n, compare.
  const BigUint s = BigUint::from_bytes(sig);
  const BigUint em = s.mod_pow(key().pub.e, key().pub.n);
  // em must re-verify: this indirectly proves CRT produced em^d correctly.
  EXPECT_TRUE(rsa_verify(key().pub, m, sig));
  EXPECT_EQ(s.mod_pow(key().pub.e, key().pub.n), em);
}

TEST_F(RsaTest, DifferentMessagesDifferentSignatures) {
  const Bytes s1 = rsa_sign(key().priv, msg_bytes("a"));
  const Bytes s2 = rsa_sign(key().priv, msg_bytes("b"));
  EXPECT_NE(s1, s2);
  // Deterministic: same message, same signature.
  EXPECT_EQ(rsa_sign(key().priv, msg_bytes("a")), s1);
}

TEST(RsaKeygen, DeterministicFromSeed) {
  Rng r1(500), r2(500);
  const RsaKeyPair k1 = rsa_generate(r1, 256);
  const RsaKeyPair k2 = rsa_generate(r2, 256);
  EXPECT_EQ(k1.pub.n, k2.pub.n);
  EXPECT_EQ(k1.priv.d, k2.priv.d);
}

TEST(RsaKeygen, DistinctSeedsDistinctKeys) {
  Rng r1(501), r2(502);
  EXPECT_NE(rsa_generate(r1, 256).pub.n, rsa_generate(r2, 256).pub.n);
}

TEST(RsaKeygen, CrossKeyVerificationFails) {
  Rng r1(601), r2(602);
  const RsaKeyPair k1 = rsa_generate(r1, 512);
  const RsaKeyPair k2 = rsa_generate(r2, 512);
  const Bytes m = msg_bytes("signed under k1");
  const Bytes sig = rsa_sign(k1.priv, m);
  EXPECT_FALSE(rsa_verify(k2.pub, m, sig));
}

}  // namespace
}  // namespace nwade::crypto
