// Bignum arithmetic: known answers, algebraic properties, and randomized
// cross-checks between independent code paths (divmod vs mul/add, Montgomery
// pow vs naive square-and-multiply).
#include "crypto/bignum.h"

#include <gtest/gtest.h>

namespace nwade::crypto {
namespace {

BigUint big(std::string_view hex) { return BigUint::from_hex(hex); }

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0);
  EXPECT_EQ(z + z, z);
  EXPECT_EQ(z * BigUint(12345), z);
}

TEST(BigUint, HexRoundTrip) {
  const BigUint v = big("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(BigUint::from_bytes(v.to_bytes()), v);
}

TEST(BigUint, OddHexLengthParses) {
  EXPECT_EQ(big("f"), BigUint(15));
  EXPECT_EQ(big("123"), BigUint(0x123));
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  const BigUint a = big("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(a + BigUint(1), big("0100000000000000000000000000000000"));
}

TEST(BigUint, SubtractionBorrowsAcrossLimbs) {
  const BigUint a = big("0100000000000000000000000000000000");
  EXPECT_EQ(a - BigUint(1), big("ffffffffffffffffffffffffffffffff"));
}

TEST(BigUint, MultiplicationKnownAnswer) {
  // 0xFFFFFFFFFFFFFFFF^2 = 0xFFFFFFFFFFFFFFFE0000000000000001
  const BigUint a(0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(a * a, big("fffffffffffffffe0000000000000001"));
}

TEST(BigUint, ShiftInverse) {
  const BigUint v = big("123456789abcdef0fedcba9876543210");
  for (int s : {1, 7, 63, 64, 65, 130}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
}

TEST(BigUint, DivmodIdentityRandomized) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const BigUint a = BigUint::random_bits(rng, 20 + static_cast<int>(rng.uniform_int(2, 500)));
    const BigUint b = BigUint::random_bits(rng, 2 + static_cast<int>(rng.uniform_int(2, 260)));
    const auto [q, r] = a.divmod(b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUint, DivmodSingleLimbMatchesGeneric) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const BigUint a = BigUint::random_bits(rng, 200);
    const std::uint64_t d = rng.next_u64() | 1;
    const auto [q, r] = a.divmod(BigUint(d));
    EXPECT_EQ(a.mod_u64(d), r.is_zero() ? 0 : r.limb(0));
    EXPECT_EQ(q * BigUint(d) + r, a);
  }
}

TEST(BigUint, CompareOrdering) {
  EXPECT_LT(BigUint(1), BigUint(2));
  EXPECT_LT(BigUint(0xFFFFFFFFFFFFFFFFULL), big("010000000000000000"));
  EXPECT_EQ(big("00ff"), BigUint(255));
}

// Naive square-and-multiply mod m, reference for Montgomery pow.
BigUint naive_mod_pow(const BigUint& base, const BigUint& exp, const BigUint& m) {
  BigUint result(1);
  result = result % m;
  BigUint b = base % m;
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

TEST(BigUint, ModPowMatchesNaive) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    BigUint m = BigUint::random_bits(rng, 128);
    if (!m.is_odd()) m = m + BigUint(1);
    const BigUint base = BigUint::random_bits(rng, 150);
    const BigUint exp = BigUint::random_bits(rng, 40);
    EXPECT_EQ(base.mod_pow(exp, m), naive_mod_pow(base, exp, m)) << "iter " << i;
  }
}

TEST(BigUint, ModPowEdgeCases) {
  const BigUint m = big("10001");  // 65537 (prime)
  EXPECT_EQ(BigUint(5).mod_pow(BigUint(), m), BigUint(1));   // x^0 = 1
  EXPECT_EQ(BigUint().mod_pow(BigUint(10), m), BigUint());   // 0^k = 0
  // Fermat: a^(p-1) = 1 mod p
  EXPECT_EQ(BigUint(12345).mod_pow(m - BigUint(1), m), BigUint(1));
}

TEST(BigUint, ModInverseKnownValues) {
  // 3^{-1} mod 7 = 5
  EXPECT_EQ(BigUint(3).mod_inverse(BigUint(7)), BigUint(5));
  // 65537^{-1} mod a known phi
  const BigUint phi = big("f37e40d4d9f3a4f1b2c3d4e5f60718293a4b5c6d7e8f90a0");
  const BigUint e(65537);
  const BigUint d = e.mod_inverse(phi);
  if (!d.is_zero()) {
    EXPECT_EQ((d * e) % phi, BigUint(1));
  }
}

TEST(BigUint, ModInverseRandomized) {
  Rng rng(1234);
  int checked = 0;
  for (int i = 0; i < 100; ++i) {
    const BigUint m = BigUint::random_bits(rng, 96);
    const BigUint a = BigUint::random_bits(rng, 80);
    if (BigUint::gcd(a, m) != BigUint(1)) continue;
    const BigUint inv = a.mod_inverse(m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_EQ((inv * a) % m, BigUint(1));
    ++checked;
  }
  EXPECT_GT(checked, 20);  // the sweep must actually exercise the path
}

TEST(BigUint, ModInverseNonCoprimeReturnsZero) {
  EXPECT_TRUE(BigUint(6).mod_inverse(BigUint(9)).is_zero());
  EXPECT_TRUE(BigUint(10).mod_inverse(BigUint(20)).is_zero());
}

TEST(BigUint, GcdKnownValues) {
  EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(36)), BigUint(12));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(31)), BigUint(1));
  EXPECT_EQ(BigUint::gcd(BigUint(), BigUint(5)), BigUint(5));
}

TEST(Primality, SmallKnownPrimes) {
  Rng rng(5);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 65537ULL, 2147483647ULL}) {
    EXPECT_TRUE(is_probable_prime(BigUint(p), rng)) << p;
  }
}

TEST(Primality, SmallKnownComposites) {
  Rng rng(6);
  // Includes Carmichael numbers 561, 41041 which fool Fermat-only tests.
  for (std::uint64_t c : {1ULL, 4ULL, 9ULL, 561ULL, 41041ULL, 65536ULL, 1000001ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), rng)) << c;
  }
}

TEST(Primality, KnownLargePrime) {
  Rng rng(7);
  // 2^127 - 1 is a Mersenne prime.
  const BigUint m127 = (BigUint(1) << 127) - BigUint(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 factors as 3 * 5 * 17 * ...
  EXPECT_FALSE(is_probable_prime((BigUint(1) << 128) - BigUint(1), rng));
}

TEST(Primality, GeneratePrimeHasExactBitLength) {
  Rng rng(8);
  for (int bits : {64, 128, 256}) {
    const BigUint p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
  }
}

TEST(Montgomery, PowMatchesNaiveOnLargeModulus) {
  Rng rng(21);
  BigUint m = BigUint::random_bits(rng, 512);
  if (!m.is_odd()) m = m + BigUint(1);
  const Montgomery mont(m);
  for (int i = 0; i < 10; ++i) {
    const BigUint base = BigUint::random_bits(rng, 512);
    const BigUint exp = BigUint::random_bits(rng, 32);
    EXPECT_EQ(mont.pow(base, exp), naive_mod_pow(base, exp, m));
  }
}

TEST(Rng, DeterministicStreams) {
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = a.fork(1), d = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
  // Different salts give different streams.
  Rng e = a.fork(2);
  EXPECT_NE(c.next_u64(), e.next_u64());
}

TEST(Rng, PoissonMeanRoughlyCorrect) {
  Rng rng(3);
  for (double mean : {0.5, 4.0, 40.0}) {
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += rng.poisson(mean);
    EXPECT_NEAR(total / n, mean, mean * 0.08 + 0.05);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace nwade::crypto
