// Signer interface: RSA and HMAC implementations behave identically at the
// protocol level (sign -> verifier accepts; any tamper -> rejects).
#include "crypto/signer.h"

#include <gtest/gtest.h>

namespace nwade::crypto {
namespace {

Bytes msg_bytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

std::unique_ptr<Signer> make_signer(const std::string& kind) {
  if (kind == "rsa") {
    Rng rng(31337);
    return RsaSigner::generate(rng, 512);
  }
  return std::make_unique<HmacSigner>(msg_bytes("shared-test-key"));
}

class SignerContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SignerContractTest, RoundTrip) {
  const auto signer = make_signer(GetParam());
  const Bytes m = msg_bytes("block payload");
  const Bytes sig = signer->sign(m);
  EXPECT_TRUE(signer->verifier()->verify(m, sig));
}

TEST_P(SignerContractTest, RejectsTamperedMessage) {
  const auto signer = make_signer(GetParam());
  const Bytes sig = signer->sign(msg_bytes("payload"));
  EXPECT_FALSE(signer->verifier()->verify(msg_bytes("Payload"), sig));
}

TEST_P(SignerContractTest, RejectsTamperedSignature) {
  const auto signer = make_signer(GetParam());
  const Bytes m = msg_bytes("payload");
  Bytes sig = signer->sign(m);
  sig[0] ^= 0x80;
  EXPECT_FALSE(signer->verifier()->verify(m, sig));
}

TEST_P(SignerContractTest, RejectsEmptySignature) {
  const auto signer = make_signer(GetParam());
  EXPECT_FALSE(signer->verifier()->verify(msg_bytes("payload"), Bytes{}));
}

TEST_P(SignerContractTest, VerifierIsShareable) {
  const auto signer = make_signer(GetParam());
  const auto v1 = signer->verifier();
  const auto v2 = signer->verifier();
  const Bytes m = msg_bytes("shared");
  const Bytes sig = signer->sign(m);
  EXPECT_TRUE(v1->verify(m, sig));
  EXPECT_TRUE(v2->verify(m, sig));
}

INSTANTIATE_TEST_SUITE_P(Kinds, SignerContractTest, ::testing::Values("rsa", "hmac"));

TEST(HmacSigner, DifferentKeysDoNotCrossVerify) {
  HmacSigner a(msg_bytes("key-a")), b(msg_bytes("key-b"));
  const Bytes m = msg_bytes("msg");
  EXPECT_FALSE(b.verifier()->verify(m, a.sign(m)));
}

}  // namespace
}  // namespace nwade::crypto
