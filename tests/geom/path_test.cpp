// Path: arc-length parameterization, projection, conflicts, Vec2 math.
#include "geom/path.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nwade::geom {
namespace {

constexpr double kTol = 1e-6;

TEST(Vec2, Basics) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(a.cross({1, 0}), -4.0);
  EXPECT_NEAR(a.normalized().norm(), 1.0, kTol);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
  const Vec2 r = Vec2{1, 0}.rotated(M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, kTol);
  EXPECT_NEAR(r.y, 1.0, kTol);
  EXPECT_EQ((Vec2{1, 0}.perp()), (Vec2{0, 1}));
}

TEST(Path, StraightLineLengthAndSampling) {
  const Path p = make_line({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.length(), 10.0);
  EXPECT_EQ(p.point_at(0), (Vec2{0, 0}));
  EXPECT_EQ(p.point_at(10), (Vec2{10, 0}));
  EXPECT_EQ(p.point_at(5), (Vec2{5, 0}));
  // Clamping.
  EXPECT_EQ(p.point_at(-1), (Vec2{0, 0}));
  EXPECT_EQ(p.point_at(99), (Vec2{10, 0}));
  EXPECT_EQ(p.tangent_at(5), (Vec2{1, 0}));
}

TEST(Path, DegenerateInputs) {
  EXPECT_TRUE(Path(std::vector<Vec2>{}).empty());
  EXPECT_TRUE(Path({{1, 1}}).empty());
  EXPECT_TRUE(Path({{1, 1}, {1, 1}}).empty());  // duplicates collapse
  EXPECT_DOUBLE_EQ(Path(std::vector<Vec2>{}).length(), 0.0);
}

TEST(Path, PolylineArcLength) {
  const Path p({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
  EXPECT_EQ(p.point_at(3), (Vec2{3, 0}));
  const Vec2 mid = p.point_at(5);
  EXPECT_NEAR(mid.x, 3.0, kTol);
  EXPECT_NEAR(mid.y, 2.0, kTol);
}

TEST(Path, ArcHasCorrectLength) {
  // Quarter circle radius 10: length = 5*pi.
  const Path arc = make_arc({0, 0}, 10, 0, M_PI / 2, 64);
  EXPECT_NEAR(arc.length(), 10 * M_PI / 2, 0.02);
  EXPECT_NEAR(arc.point_at(0).x, 10.0, kTol);
  EXPECT_NEAR(arc.point_at(arc.length()).y, 10.0, kTol);
}

TEST(Path, BezierEndpointsAndMonotoneProgress) {
  const Path b = make_bezier({0, 0}, {5, 0}, {10, 5}, {10, 10}, 32);
  EXPECT_EQ(b.points().front(), (Vec2{0, 0}));
  EXPECT_EQ(b.points().back(), (Vec2{10, 10}));
  // Arc length exceeds straight-line distance.
  EXPECT_GT(b.length(), (Vec2{10, 10} - Vec2{0, 0}).norm() - kTol);
}

TEST(Path, ProjectFindsClosestPoint) {
  const Path p = make_line({0, 0}, {10, 0});
  const auto [d1, s1] = p.project({5, 3});
  EXPECT_NEAR(d1, 3.0, kTol);
  EXPECT_NEAR(s1, 5.0, kTol);
  // Beyond the end projects to the endpoint.
  const auto [d2, s2] = p.project({12, 0});
  EXPECT_NEAR(d2, 2.0, kTol);
  EXPECT_NEAR(s2, 10.0, kTol);
}

TEST(Path, JoinedConcatenatesLengths) {
  const Path a = make_line({0, 0}, {10, 0});
  const Path b = make_line({10, 0}, {10, 5});
  const Path j = a.joined(b);
  EXPECT_DOUBLE_EQ(j.length(), 15.0);
  EXPECT_EQ(j.point_at(12), (Vec2{10, 2}));
}

TEST(Path, SubpathPreservesGeometry) {
  const Path p({{0, 0}, {10, 0}, {10, 10}});
  const Path sub = p.subpath(5, 15);
  EXPECT_NEAR(sub.length(), 10.0, kTol);
  EXPECT_EQ(sub.point_at(0), (Vec2{5, 0}));
  EXPECT_NEAR(sub.point_at(10).y, 5.0, kTol);
  // Degenerate span.
  EXPECT_TRUE(p.subpath(5, 5).empty());
  // Clamped span.
  EXPECT_NEAR(p.subpath(-5, 100).length(), 20.0, kTol);
}

TEST(Path, SampleSpacing) {
  const Path p = make_line({0, 0}, {10, 0});
  const auto samples = p.sample(2.5);
  ASSERT_EQ(samples.size(), 5u);  // 0, 2.5, 5, 7.5, 10
  EXPECT_EQ(samples.back(), (Vec2{10, 0}));
}

TEST(Conflicts, CrossingPathsHaveOneZone) {
  const Path a = make_line({-10, 0}, {10, 0});
  const Path b = make_line({0, -10}, {0, 10});
  const auto zones = find_conflicts(a, b, 2.0, 0.5);
  ASSERT_EQ(zones.size(), 1u);
  // Conflict centered at the crossing (s = 10 on both).
  EXPECT_NEAR((zones[0].a_begin + zones[0].a_end) / 2, 10.0, 1.0);
  EXPECT_NEAR((zones[0].b_begin + zones[0].b_end) / 2, 10.0, 1.0);
}

TEST(Conflicts, ParallelDistantPathsHaveNone) {
  const Path a = make_line({0, 0}, {100, 0});
  const Path b = make_line({0, 10}, {100, 10});
  EXPECT_TRUE(find_conflicts(a, b, 3.0, 1.0).empty());
}

TEST(Conflicts, OverlappingPathsYieldLongZone) {
  const Path a = make_line({0, 0}, {100, 0});
  const Path b = make_line({50, 0}, {150, 0});
  const auto zones = find_conflicts(a, b, 2.0, 1.0);
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_NEAR(zones[0].a_begin, 48.0, 2.5);  // conflict starts ~ where b starts
  EXPECT_NEAR(zones[0].a_end, 100.0, 1.0);
}

TEST(Conflicts, DoubleCrossingYieldsTwoZones) {
  // b crosses a twice (a zig-zag over a straight line).
  const Path a = make_line({0, 0}, {100, 0});
  const Path b({{20, -10}, {30, 10}, {70, 10}, {80, -10}});
  const auto zones = find_conflicts(a, b, 2.0, 0.5);
  EXPECT_EQ(zones.size(), 2u);
}

TEST(Conflicts, EmptyPathsYieldNone) {
  EXPECT_TRUE(find_conflicts(Path(), make_line({0, 0}, {1, 0}), 1.0).empty());
}

}  // namespace
}  // namespace nwade::geom
