// SpatialHash contract tests: every answer is checked against the
// brute-force computation it replaces, including the superset guarantee,
// ascending candidate order, and exactly-once pair visiting.
#include "geom/spatial_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace nwade::geom {
namespace {

std::vector<Vec2> random_points(std::uint64_t seed, int n, double extent) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Vec2{rng.uniform(-extent, extent), rng.uniform(-extent, extent)});
  }
  return pts;
}

TEST(SpatialHash, QueryIsSupersetOfBruteForceAndAscending) {
  for (const double cell : {2.0, 8.0, 64.0}) {
    SpatialHash grid(cell);
    const auto pts = random_points(/*seed=*/42, /*n=*/300, /*extent=*/250.0);
    for (const Vec2& p : pts) grid.insert(p);

    Rng rng(7);
    std::vector<std::size_t> candidates;
    for (int q = 0; q < 50; ++q) {
      const Vec2 center{rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)};
      const double radius = rng.uniform(0.5, 120.0);
      candidates.clear();
      grid.query_candidates(center, radius, candidates);

      ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
      ASSERT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                  candidates.end())
          << "duplicate candidate";

      const std::set<std::size_t> candidate_set(candidates.begin(),
                                                candidates.end());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].distance_to(center) <= radius) {
          EXPECT_TRUE(candidate_set.contains(i))
              << "in-radius point " << i << " missing (cell " << cell
              << ", radius " << radius << ")";
        }
      }
    }
  }
}

TEST(SpatialHash, QueryEdgeCases) {
  SpatialHash grid(8.0);
  std::vector<std::size_t> out;
  grid.query_candidates(Vec2{0, 0}, 10.0, out);
  EXPECT_TRUE(out.empty()) << "empty grid yields no candidates";

  grid.insert(Vec2{1.0, 1.0});
  out.clear();
  grid.query_candidates(Vec2{0, 0}, -1.0, out);
  EXPECT_TRUE(out.empty()) << "negative radius yields no candidates";

  out.clear();
  grid.query_candidates(Vec2{0, 0}, 0.0, out);
  // Radius 0 still visits the center's cell: superset, not exact.
  EXPECT_EQ(out.size(), 1u);

  // A giant radius returns everything exactly once, ascending.
  grid.insert(Vec2{-50.0, 30.0});
  grid.insert(Vec2{200.0, -120.0});
  out.clear();
  grid.query_candidates(Vec2{0, 0}, 1e6, out);
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SpatialHash, NearPairsCoverBruteForcePairsExactlyOnce) {
  for (const double cell : {1.5, 2.0, 10.0}) {
    SpatialHash grid(cell);
    // Dense enough that many pairs share cells (duplicates would show).
    const auto pts = random_points(/*seed=*/9, /*n=*/250, /*extent=*/30.0);
    for (const Vec2& p : pts) grid.insert(p);

    std::set<std::pair<std::size_t, std::size_t>> visited;
    grid.for_each_near_pair([&](std::size_t a, std::size_t b) {
      ASSERT_LT(a, b);
      const bool inserted = visited.insert({a, b}).second;
      ASSERT_TRUE(inserted) << "pair (" << a << "," << b << ") visited twice";
    });

    // Superset: every pair strictly closer than the cell size is visited.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (pts[i].distance_to(pts[j]) < cell) {
          EXPECT_TRUE(visited.contains({i, j}))
              << "close pair (" << i << "," << j << ") missed at cell "
              << cell;
        }
      }
    }
  }
}

TEST(SpatialHash, ClearAndCellSizeReset) {
  SpatialHash grid(4.0);
  grid.insert(Vec2{1, 1});
  grid.insert(Vec2{2, 2});
  EXPECT_EQ(grid.size(), 2u);
  grid.clear();
  EXPECT_TRUE(grid.empty());
  std::vector<std::size_t> out;
  grid.query_candidates(Vec2{1, 1}, 100.0, out);
  EXPECT_TRUE(out.empty());

  grid.insert(Vec2{3, 3});
  grid.set_cell_size(16.0);  // clears: buckets are size-dependent
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.cell_size(), 16.0);
}

}  // namespace
}  // namespace nwade::geom
