// Mixed-traffic extension (the paper's future work): legacy vehicles without
// V2X share the intersection with managed traffic. The IM synthesizes virtual
// plans from perception and schedules managed vehicles around them.
#include <gtest/gtest.h>

#include "sim/world.h"

namespace nwade::sim {
namespace {

ScenarioConfig mixed_config(double fraction) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 90'000;
  cfg.legacy_fraction = fraction;
  cfg.seed = 77;
  return cfg;
}

TEST(MixedTraffic, ZeroFractionSpawnsNoLegacy) {
  const RunSummary s = World(mixed_config(0.0)).run();
  EXPECT_EQ(s.legacy_spawned, 0);
}

TEST(MixedTraffic, LegacyVehiclesCrossTheIntersection) {
  const RunSummary s = World(mixed_config(0.3)).run();
  EXPECT_GT(s.legacy_spawned, 5);
  EXPECT_GT(s.legacy_exited, 2);
  // Managed traffic still flows.
  EXPECT_GT(s.metrics.vehicles_exited, 10);
}

TEST(MixedTraffic, NoFalseAlarmsFromLegacyVehicles) {
  const RunSummary s = World(mixed_config(0.3)).run();
  // Legacy-induced replanning means a watcher can briefly hold a stale copy
  // of a queued vehicle's plan and file a report; the IM (which holds the
  // newest plan) must dismiss every such report, and nothing may escalate.
  // Constant legacy-driven replanning keeps some watcher plan-copies briefly
  // stale, so a bounded trickle of reports is expected...
  EXPECT_LE(s.metrics.incident_reports, 30);
  // ...but the IM (holding the newest plans) dismisses them all and nothing
  // ever escalates.
  EXPECT_GE(s.metrics.alarm_dismissals, s.metrics.incident_reports > 0 ? 1 : 0);
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
  EXPECT_EQ(s.metrics.benign_self_evacuations, 0);
  EXPECT_EQ(s.metrics.evacuation_alerts, 0);
}

TEST(MixedTraffic, NearCollisionFreeGroundTruth) {
  const RunSummary s = World(mixed_config(0.3)).run();
  // Legacy vehicles have no cooperative planning: the audit counts
  // pair-seconds below 1.5 m, and legacy cars briefly close-follow while
  // braking behind queues. A handful of pair-seconds is the uncooperative
  // reality the paper's future work asks about; sustained contact is not.
  EXPECT_LE(s.min_ground_truth_gap_violations, 5)
      << "managed traffic must be scheduled around legacy trajectories";
}

TEST(MixedTraffic, ChainCarriesUnmanagedPlans) {
  ScenarioConfig cfg = mixed_config(0.4);
  World world(cfg);
  world.run_until(60'000);
  bool found_unmanaged = false;
  for (VehicleId id : world.vehicle_ids()) {
    const auto* v = world.vehicle(id);
    if (v->exited()) continue;
    for (const auto& block : v->store().blocks()) {
      for (const auto& p : block.plans()) {
        if (p.unmanaged) found_unmanaged = true;
      }
    }
    if (found_unmanaged) break;
  }
  EXPECT_TRUE(found_unmanaged)
      << "the IM publishes virtual legacy plans through the chain";
}

TEST(MixedTraffic, AttackStillDetectedAmongLegacyTraffic) {
  ScenarioConfig cfg = mixed_config(0.3);
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 40'000;
  const RunSummary s = World(cfg).run();
  if (s.metrics.violation_start) {
    EXPECT_TRUE(s.metrics.deviation_confirmed.has_value())
        << "legacy bystanders must not blind the neighbourhood watch";
  }
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
}

TEST(MixedTraffic, HighPenetrationStillSafe) {
  const RunSummary s = World(mixed_config(0.6)).run();
  EXPECT_GT(s.legacy_exited, 5);
  // At 60% penetration most interactions are legacy-vs-legacy queueing;
  // close-following pair-seconds grow accordingly but never explode.
  EXPECT_LE(s.min_ground_truth_gap_violations, 20);
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
}

TEST(MixedTraffic, DeterministicWithLegacy) {
  const RunSummary a = World(mixed_config(0.3)).run();
  const RunSummary b = World(mixed_config(0.3)).run();
  EXPECT_EQ(a.legacy_spawned, b.legacy_spawned);
  EXPECT_EQ(a.legacy_exited, b.legacy_exited);
  EXPECT_EQ(a.metrics.vehicles_exited, b.metrics.vehicles_exited);
}

}  // namespace
}  // namespace nwade::sim
