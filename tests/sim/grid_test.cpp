// Unit coverage for the multi-intersection lattice (sim::Grid,
// docs/GRID.md): boundary-handoff mechanics, outage deferral on the
// reliable lane, gossip blacklist propagation, the nested-thread budget,
// grid checkpoint round-trips (including unknown-section tolerance and
// corrupt-blob rejection), and the rejection of a blacklisted vehicle at
// plan-request time.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/grid.h"
#include "util/crc32.h"

namespace nwade::sim {
namespace {

/// A 1 x cols corridor of cross4 shards.
GridConfig corridor(int cols, double vpm, Duration duration,
                    std::uint64_t seed = 11) {
  GridConfig g;
  g.rows = 1;
  g.cols = cols;
  g.shard.intersection.kind = traffic::IntersectionKind::kCross4;
  g.shard.vehicles_per_minute = vpm;
  g.shard.duration_ms = duration;
  g.shard.attack_time = 10'000;
  g.seed = seed;
  g.exchange_every_ms = 500;
  g.gossip_every_ms = 1'000;
  return g;
}

std::string run_digest(GridConfig cfg) {
  Grid grid(std::move(cfg));
  return Grid::summary_digest(grid.run());
}

TEST(Grid, CorridorHandsVehiclesDownstream) {
  Grid grid(corridor(2, 240, 60'000));
  const GridSummary s = grid.run();
  // A dense corridor must actually exercise the boundary: vehicles exit
  // toward the neighbour, cross the edge, and materialise downstream.
  EXPECT_GT(s.handoffs_sent, 0u);
  EXPECT_GT(s.handoffs_delivered, 0u);
  EXPECT_LE(s.handoffs_delivered, s.handoffs_sent);  // in-flight at the end
  EXPECT_GT(s.retired, 0u);  // lattice-border exits leave the modelled region
  EXPECT_EQ(s.shards.size(), 2u);
  // Identical construction reproduces the run byte for byte.
  EXPECT_EQ(Grid::summary_digest(s), run_digest(corridor(2, 240, 60'000)));
}

TEST(Grid, BoundaryScheduleIndependentOfRunUntilSlicing) {
  // Boundaries live on the absolute exchange lattice: driving the grid in
  // odd 300 ms slices must cross the same boundaries as one big run_until.
  Grid sliced(corridor(2, 120, 30'000));
  for (Tick t = 300; t <= 30'000; t += 300) sliced.run_until(t);
  sliced.run_until(30'000);
  EXPECT_EQ(Grid::summary_digest(sliced.summary()),
            run_digest(corridor(2, 120, 30'000)));
}

TEST(Grid, NestedThreadBudgetKeepsOneLevelOfParallelism) {
  // 8 grid threads x 4 step threads must run 8 workers, not 32: the inner
  // per-shard pools collapse to inline stepping (worker_pool.h policy).
  GridConfig cfg = corridor(2, 60, 10'000);
  cfg.grid_threads = 8;
  cfg.shard.step_threads = 4;
  Grid parallel(cfg);
  EXPECT_EQ(parallel.shard(0, 0).config().step_threads, 1);
  EXPECT_EQ(parallel.shard(0, 1).config().step_threads, 1);
  // A serial grid passes the full inner budget through.
  cfg.grid_threads = 1;
  Grid serial(cfg);
  EXPECT_EQ(serial.shard(0, 0).config().step_threads, 4);
}

TEST(Grid, EdgeOutageDefersHandoffsButNeverDrops) {
  GridConfig cfg = corridor(2, 240, 60'000);
  cfg.edge.outages.push_back(net::EdgeOutage{5'000, 55'000});
  Grid grid(cfg);
  const GridSummary s = grid.run();
  // The reliable lane defers across the dark window instead of dropping:
  // every handoff sent during [5s, 55s) is delayed past the window's end,
  // and the healed link delivers them before the run ends.
  EXPECT_GT(s.handoffs_sent, 0u);
  EXPECT_GT(s.handoffs_deferred, 0u);
  EXPECT_GT(s.handoffs_delivered, 0u);
  // Fault injection is part of the seeded universe: byte-identical reruns.
  EXPECT_EQ(Grid::summary_digest(s), run_digest(cfg));
}

TEST(Grid, HandoffLandingMidVerifyRoundIsDeterministic) {
  // A deviation attacker in shard 0 keeps verify rounds in flight while
  // jittered handoffs land at arbitrary offsets inside them. The digest
  // must not depend on the shard-stepping thread count.
  GridConfig cfg = corridor(2, 120, 60'000);
  cfg.attack_shard = 0;
  cfg.shard.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  cfg.edge.jitter_ms = 70;
  const std::string reference = run_digest(cfg);
  cfg.grid_threads = 2;
  EXPECT_EQ(run_digest(cfg), reference);
}

TEST(Grid, GossipSpreadsBlacklistDownstream) {
  // Attacker at the corridor head; the confirmed suspect must propagate
  // shard-to-shard over the lossy gossip lane (cumulative resend), reaching
  // the far end two hops later — before the attacker could drive there.
  GridConfig cfg = corridor(3, 100, 90'000);
  cfg.attack_shard = 0;
  cfg.shard.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  Grid grid(cfg);
  const GridSummary s = grid.run();
  ASSERT_EQ(grid.shard(0, 0).malicious_ids().size(), 1u);
  const VehicleId attacker = *grid.shard(0, 0).malicious_ids().begin();
  EXPECT_TRUE(grid.shard(0, 0).im().is_blacklisted(attacker))
      << "upstream IM never confirmed its own deviator";
  EXPECT_TRUE(grid.shard(0, 1).im().is_blacklisted(attacker));
  EXPECT_TRUE(grid.shard(0, 2).im().is_blacklisted(attacker));
  EXPECT_GT(s.gossip_sent, 0u);
  EXPECT_GE(s.gossip_imports, 2u);
}

TEST(Grid, ImportedBlacklistRejectsInjectedVehicle) {
  // World-level half of the downstream-distrust story: an IM that imported
  // a suspect via gossip refuses that vehicle's plan request outright.
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 30;
  cfg.duration_ms = 60'000;
  cfg.seed = 9;
  cfg.extra_vehicle_capacity = 4;
  World w(cfg);
  w.run_until(1'000);
  const VehicleId intruder{777'777};
  EXPECT_TRUE(w.import_blacklist(intruder));
  EXPECT_FALSE(w.import_blacklist(intruder));  // idempotent
  EXPECT_TRUE(w.im().is_blacklisted(intruder));
  w.inject_vehicle(intruder, 0, traffic::VehicleTraits{}, 10.0);
  w.run_until(30'000);
  const auto& counters = w.summary().metrics_snapshot.counters;
  const auto it = counters.find("nwade.plan_rejections");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second, 1);
}

TEST(Grid, CheckpointRoundTripContinuesBitIdentical) {
  GridConfig cfg = corridor(2, 120, 60'000);
  cfg.rows = 2;  // 2x2: interior edges in both axes
  cfg.attack_shard = 0;
  cfg.shard.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  cfg.edge.jitter_ms = 50;

  Grid original(cfg);
  original.run_until(20'000);  // an exchange boundary (multiple of 500)
  const Bytes blob = original.checkpoint_save();
  original.run_until(60'000);
  const std::string uninterrupted = Grid::summary_digest(original.summary());

  std::string error;
  // The restoring process picks its own grid_threads — a wall-clock knob.
  std::unique_ptr<Grid> restored = Grid::checkpoint_restore(blob, 2, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->now(), 20'000);
  // Save -> restore -> save is byte-identical (no state invented or lost).
  EXPECT_EQ(restored->checkpoint_save(), blob);
  restored->run_until(60'000);
  EXPECT_EQ(Grid::summary_digest(restored->summary()), uninterrupted);
}

TEST(Grid, CheckpointToleratesUnknownSections) {
  GridConfig cfg = corridor(2, 120, 20'000);
  Grid original(cfg);
  original.run_until(10'000);
  const Bytes blob = original.checkpoint_save();
  original.run_until(20'000);
  const std::string uninterrupted = Grid::summary_digest(original.summary());

  // Re-encode the envelope with an extra section a future writer might add;
  // a v1 reader must skip it (after checking its CRC) and continue exactly.
  ByteReader r(blob);
  const std::string schema = r.str();
  const std::uint32_t n = r.u32();
  ByteWriter w;
  w.str(schema);
  w.u32(n + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    w.str(r.str());
    w.u32(r.u32());
    w.bytes(r.bytes());
  }
  ASSERT_TRUE(r.ok() && r.at_end());
  const Bytes extra = {0xde, 0xad, 0xbe, 0xef};
  w.str("future.extension");
  w.u32(util::crc32(extra));
  w.bytes(extra);

  std::string error;
  std::unique_ptr<Grid> restored =
      Grid::checkpoint_restore(w.take(), 1, &error);
  ASSERT_NE(restored, nullptr) << error;
  restored->run_until(20'000);
  EXPECT_EQ(Grid::summary_digest(restored->summary()), uninterrupted);
}

TEST(Grid, CheckpointRejectsCorruption) {
  GridConfig cfg = corridor(2, 120, 20'000);
  Grid grid(cfg);
  grid.run_until(10'000);
  const Bytes blob = grid.checkpoint_save();

  std::string error;
  EXPECT_EQ(Grid::checkpoint_restore(Bytes{1, 2, 3}, 1, &error), nullptr);
  EXPECT_FALSE(error.empty());

  Bytes truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_EQ(Grid::checkpoint_restore(truncated, 1, &error), nullptr);

  // A single flipped payload byte must be caught (CRC or a parse check).
  Bytes corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_EQ(Grid::checkpoint_restore(corrupt, 1, &error), nullptr);
}

}  // namespace
}  // namespace nwade::sim
