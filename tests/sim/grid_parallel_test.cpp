// Grid lockstep determinism lock (ctest label: chaos, so the TSan tree vets
// the shard fan-out): `GridConfig::grid_threads` may only change the wall
// clock, never a result byte. Phase A fans the shards over the pool, but
// phases B/C (exit drain, gossip, delivery) run serially in fixed orders,
// so a 4x4 lattice with a deviation attacker, cross-IM gossip, edge jitter,
// and an outage window must reproduce the single-threaded summary digest at
// every thread count.
//
// Also the grid-level neighborhood-watch story (ISSUE acceptance): an
// attacker flagged at its origin shard is distrusted at a shard it has
// never visited — and when it shows up there, its plan request is refused.
#include <gtest/gtest.h>

#include <string>

#include "sim/grid.h"

namespace nwade::sim {
namespace {

GridConfig lattice(int dim, int grid_threads) {
  GridConfig g;
  g.rows = dim;
  g.cols = dim;
  g.shard.intersection.kind = traffic::IntersectionKind::kCross4;
  g.shard.vehicles_per_minute = 60;
  g.shard.duration_ms = 30'000;
  g.shard.attack_time = 10'000;
  g.seed = 21;
  g.exchange_every_ms = 500;
  g.gossip_every_ms = 1'000;
  g.grid_threads = grid_threads;
  // One deviation attacker at the origin shard; everything downstream only
  // hears about it via gossip.
  g.attack_shard = 0;
  g.shard.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
  // Imperfect edges so the determinism claim covers the fault machinery:
  // jittered latency, an outage window, and gossip burst loss.
  g.edge.jitter_ms = 40;
  g.edge.ge_p_good_to_bad = 0.05;
  g.edge.outages.push_back(net::EdgeOutage{12'000, 15'000});
  return g;
}

TEST(GridParallel, FourByFourDigestByteIdenticalAcrossThreadCounts) {
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    Grid grid(lattice(4, threads));
    const GridSummary s = grid.run();
    const std::string digest = Grid::summary_digest(s);
    if (threads == 1) {
      reference = digest;
      // The scenario must actually exercise the exchange machinery, or the
      // digest sweep proves nothing about it.
      EXPECT_GT(s.handoffs_delivered, 0u);
      EXPECT_GT(s.gossip_imports, 0u);
    } else {
      EXPECT_EQ(digest, reference) << "grid_threads=" << threads;
    }
  }
}

TEST(GridParallel, MergedMetricsByteIdenticalAcrossThreadCountsAndEqualsFold) {
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    GridConfig cfg = lattice(2, threads);
    cfg.shard.duration_ms = 20'000;
    Grid grid(cfg);
    grid.run_until(cfg.shard.duration_ms);
    const std::string merged_json = grid.merged_metrics().json();
    if (threads == 1) {
      reference = merged_json;
      ASSERT_FALSE(reference.empty());
      // The lattice-wide snapshot must be exactly the row-major fold of the
      // per-shard summary snapshots — same merge the campaign engine uses.
      util::telemetry::MetricsSnapshot fold;
      for (int r = 0; r < grid.rows(); ++r) {
        for (int c = 0; c < grid.cols(); ++c) {
          fold.merge(grid.shard(r, c).summary().metrics_snapshot);
        }
      }
      EXPECT_EQ(fold.json(), merged_json);
      // It must actually span shards: the folded step counter is all four
      // shards' steps, not one shard's.
      const auto it = fold.counters.find("sim.steps");
      ASSERT_NE(it, fold.counters.end());
      EXPECT_EQ(it->second, 4 * (20'000 / cfg.shard.step_ms));
    } else {
      EXPECT_EQ(merged_json, reference) << "grid_threads=" << threads;
    }
  }
}

TEST(GridParallel, UpstreamFlaggedAttackerRejectedAtDownstreamIm) {
  GridConfig cfg = lattice(2, 2);
  cfg.shard.duration_ms = 90'000;
  // max_hops 1: the attacker can cross at most one boundary, so it can
  // never physically reach the far corner (two hops away) on its own —
  // only its reputation can, via two gossip hops.
  cfg.max_hops = 1;
  Grid grid(cfg);
  grid.run_until(60'000);

  ASSERT_EQ(grid.shard(0, 0).malicious_ids().size(), 1u);
  const VehicleId attacker = *grid.shard(0, 0).malicious_ids().begin();
  ASSERT_TRUE(grid.shard(0, 0).im().is_blacklisted(attacker))
      << "origin IM never confirmed its own deviator";
  World& far = grid.shard(1, 1);
  ASSERT_TRUE(far.im().is_blacklisted(attacker))
      << "gossip never reached the far corner";
  ASSERT_EQ(far.vehicle(attacker), nullptr);

  // The flagged vehicle now shows up at the far corner: its very first plan
  // request is refused on identity alone — it never got to misbehave there.
  far.inject_vehicle(attacker, 0, traffic::VehicleTraits{}, 10.0);
  grid.run_until(75'000);
  const auto& counters = far.summary().metrics_snapshot.counters;
  const auto it = counters.find("nwade.plan_rejections");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second, 1);
}

}  // namespace
}  // namespace nwade::sim
