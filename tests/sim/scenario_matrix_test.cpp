// Scenario matrix: every intersection layout crossed with the interesting
// attack settings runs to completion with sane outcomes (property-style
// end-to-end sweep, the long-tail counterpart of world_test.cpp).
#include <gtest/gtest.h>

#include "sim/world.h"

namespace nwade::sim {
namespace {

struct MatrixParam {
  traffic::IntersectionKind kind;
  std::string attack;
};

class ScenarioMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ScenarioMatrixTest, RunsToCompletionWithSaneOutcome) {
  ScenarioConfig cfg;
  cfg.intersection.kind = GetParam().kind;
  cfg.vehicles_per_minute = 70;
  cfg.duration_ms = 80'000;
  cfg.attack = protocol::attack_setting_by_name(GetParam().attack);
  cfg.attack_time = 35'000;
  cfg.seed = 321;
  World world(cfg);
  const RunSummary s = world.run();

  // Liveness: traffic moved.
  EXPECT_GT(s.metrics.vehicles_exited, 5);
  // Conservation: exited never exceeds spawned.
  EXPECT_LE(s.metrics.vehicles_exited, s.metrics.vehicles_spawned);
  // Chain liveness: blocks flowed.
  EXPECT_GT(s.metrics.blocks_published, 10);

  const auto& attack = cfg.attack;
  if (attack.malicious_vehicles == 0 && !attack.im_malicious) {
    // Benign runs stay quiet.
    EXPECT_EQ(s.metrics.incident_reports, 0);
    EXPECT_EQ(s.metrics.benign_self_evacuations, 0);
  }
  if (attack.plan_violations > 0 && s.metrics.violation_start) {
    // A physical violation, once it materializes, is recognized: either the
    // IM confirmed it, or (colluding IM) vehicles went global over it.
    EXPECT_TRUE(s.metrics.deviation_confirmed.has_value() ||
                s.metrics.im_conflict_detected.has_value())
        << intersection_name(cfg.intersection.kind) << " / " << attack.name;
  }
  // Nobody evacuated over an innocent vehicle.
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0)
      << intersection_name(cfg.intersection.kind) << " / " << attack.name;
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> out;
  for (traffic::IntersectionKind kind : traffic::kAllIntersectionKinds) {
    for (const char* attack : {"benign", "V1", "V3", "IM_V1"}) {
      out.push_back(MatrixParam{kind, attack});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllAttacks, ScenarioMatrixTest, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = intersection_name(info.param.kind);
      name += "_" + info.param.attack;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PacketLoss, ProtocolSurvivesLossyNetwork) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 80'000;
  cfg.network.loss_probability = 0.05;  // 5% packet loss
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 35'000;
  cfg.seed = 11;
  const RunSummary s = World(cfg).run();
  EXPECT_GT(s.metrics.vehicles_exited, 10);
  EXPECT_GT(s.net_stats.packets_dropped, 0u);
  // Dropped blocks force resyncs/requests but must not cause false panics.
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
}

TEST(PacketLoss, ProtocolSurvivesBurstyLossProfile) {
  // Same bar as the uniform-loss test, but with the loss arriving in bursts
  // (Gilbert–Elliott, ~6-packet bursts at 15% mean loss): whole processing
  // windows of blocks can vanish, exercising gap recovery rather than
  // single-block re-requests.
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 80'000;
  cfg.network.fault = net::burst_loss_profile(0.15, 6.0);
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 35'000;
  cfg.seed = 11;
  const RunSummary s = World(cfg).run();
  EXPECT_GT(s.metrics.vehicles_exited, 10);
  EXPECT_GT(s.net_stats.packets_dropped, 0u);
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
}

TEST(LongRun, FiveMinutesStaysBounded) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;
  cfg.duration_ms = 5 * 60'000;
  cfg.seed = 5;
  World world(cfg);
  const RunSummary s = world.run();
  // Throughput approaches demand in steady state.
  EXPECT_GT(s.throughput_vpm, 50.0);
  // Vehicle-side chain caches respect the tau/delta bound.
  for (VehicleId id : world.vehicle_ids()) {
    const auto* v = world.vehicle(id);
    EXPECT_LE(v->store().size(), cfg.nwade.chain_depth);
  }
}

}  // namespace
}  // namespace nwade::sim
