// Fuzz-style corrupt-wire regression: every decoder that ever sees bytes
// from disk or the simulated channel — TravelPlan, Block, protocol messages,
// checkpoint envelopes, replay bundles — is fed thousands of deterministic
// mutations (truncations, bit flips, splices, garbage) of valid encodings.
// The contract under test is narrow but absolute: decoding must either fail
// cleanly or return a usable value; it must never crash, hang, or read out
// of bounds (the ASan/TSan trees run this same suite).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "chain/block.h"
#include "crypto/signer.h"
#include "nwade/message_codec.h"
#include "sim/checkpoint.h"
#include "sim/world.h"
#include "util/bytes.h"

namespace nwade::sim {
namespace {

using Rng = std::mt19937_64;

std::size_t rindex(Rng& rng, std::size_t size) {
  return std::uniform_int_distribution<std::size_t>(0, size - 1)(rng);
}

/// One deterministic corruption of `blob`: truncate, flip bits, overwrite a
/// run with garbage, or splice two regions — the shapes file corruption and
/// torn writes actually produce.
Bytes mutate(Rng& rng, const Bytes& blob) {
  Bytes out = blob;
  switch (rng() % 4) {
    case 0: {  // truncate
      out.resize(rindex(rng, out.size() + 1));
      break;
    }
    case 1: {  // flip 1-8 bits
      if (out.empty()) break;
      for (int flips = 1 + static_cast<int>(rng() % 8); flips > 0; --flips) {
        out[rindex(rng, out.size())] ^= static_cast<std::uint8_t>(1 << (rng() % 8));
      }
      break;
    }
    case 2: {  // overwrite a run with garbage
      if (out.empty()) break;
      const std::size_t at = rindex(rng, out.size());
      const std::size_t len =
          std::min(out.size() - at, static_cast<std::size_t>(1 + rng() % 16));
      for (std::size_t i = 0; i < len; ++i) {
        out[at + i] = static_cast<std::uint8_t>(rng());
      }
      break;
    }
    default: {  // splice: copy one region over another (shifts length fields)
      if (out.size() < 8) break;
      const std::size_t from = rindex(rng, out.size() - 4);
      const std::size_t to = rindex(rng, out.size() - 4);
      for (std::size_t i = 0; i < 4; ++i) out[to + i] = out[from + i];
      break;
    }
  }
  return out;
}

aim::TravelPlan sample_plan() {
  aim::TravelPlan plan;
  plan.vehicle = VehicleId{42};
  plan.route_id = 3;
  plan.traits = {7, 2, 9, 4.8};
  plan.status_at_issue.position = {12.5, -3.25};
  plan.status_at_issue.speed_mps = 11.0;
  plan.status_at_issue.heading_rad = 1.25;
  plan.segments = {{0, 0.0, 10.0}, {1500, 15.0, 6.0}, {4000, 30.0, 12.0}};
  plan.issued_at = 2000;
  plan.core_entry = 3500;
  plan.core_exit = 6100;
  return plan;
}

TEST(CorruptWire, TravelPlanDecoderSurvivesMutation) {
  Rng rng(0x7A7E11);
  const Bytes valid = sample_plan().serialize();
  ASSERT_TRUE(aim::TravelPlan::deserialize(valid).has_value());

  int decoded = 0;
  for (int i = 0; i < 5000; ++i) {
    const Bytes bad = mutate(rng, valid);
    const auto plan = aim::TravelPlan::deserialize(bad);
    if (!plan) continue;
    ++decoded;
    // A decode that "succeeded" on mutated bytes must still be usable.
    (void)plan->s_at(1000);
    (void)plan->wire_size();
  }
  // Bit flips in fixed-width payload fields legitimately decode; the point
  // is that nothing above crashed, not that every mutation is rejected.
  SUCCEED() << decoded << " mutations decoded";
}

TEST(CorruptWire, BlockDecoderSurvivesMutation) {
  Rng rng(0xB10C);
  const crypto::HmacSigner signer(Bytes{1, 2, 3, 4});
  crypto::Digest prev{};
  prev[0] = 0xAA;
  const chain::Block block = chain::Block::package(
      7, prev, 12'000, {sample_plan(), sample_plan()}, signer,
      {VehicleId{9}});
  const Bytes valid = block.serialize();
  ASSERT_TRUE(chain::Block::deserialize(valid).has_value());

  for (int i = 0; i < 3000; ++i) {
    const Bytes bad = mutate(rng, valid);
    const auto decoded = chain::Block::deserialize(bad);
    if (!decoded) continue;
    // Whatever decoded must support the full read surface without faulting —
    // receivers verify signatures and Merkle roots on exactly such bytes.
    (void)decoded->signed_payload();
    (void)decoded->hash();
    (void)decoded->verify_merkle();
    (void)decoded->plan_for(VehicleId{42});
    (void)decoded->wire_size();
  }
}

TEST(CorruptWire, MessageCodecSurvivesMutation) {
  // Corpus: every in-flight message of a short fault-injected run, i.e. real
  // encodings of whatever message kinds the protocol actually exchanges.
  ScenarioConfig s;
  s.duration_ms = 30'000;
  s.vehicles_per_minute = 60;
  s.seed = 4;
  s.network.fault = net::burst_loss_profile(0.1, 4.0);
  s.network.fault.jitter_ms = 30;
  World world(s);
  world.run_until(12'000);
  const Bytes ckpt = world.checkpoint_save();

  // The network section of the checkpoint embeds encode_message output; fuzz
  // the codec directly on synthetic containers instead of surgically
  // extracting it: encode a few representative messages via a fresh save.
  Rng rng(0xC0DEC);
  ByteWriter w;
  checkpoint::save_scenario_config(w, s);
  const Bytes cfg_bytes = w.data();
  for (int i = 0; i < 3000; ++i) {
    const Bytes bad = mutate(rng, cfg_bytes);
    ByteReader r(bad);
    ScenarioConfig out;
    (void)checkpoint::load_scenario_config(r, out);
  }

  // And the full envelope (which exercises decode_message for every pending
  // delivery) through checkpoint_restore below.
  for (int i = 0; i < 200; ++i) {
    const Bytes bad = mutate(rng, ckpt);
    std::string error;
    const auto restored = World::checkpoint_restore(bad, &error);
    if (restored == nullptr) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(CorruptWire, CheckpointRestoreSurvivesMutation) {
  ScenarioConfig s;
  s.duration_ms = 30'000;
  s.vehicles_per_minute = 80;
  s.seed = 1;
  World world(s);
  world.run_until(10'000);
  const Bytes valid = world.checkpoint_save();
  {
    std::string error;
    ASSERT_NE(World::checkpoint_restore(valid, &error), nullptr) << error;
  }

  Rng rng(0xCE14);
  for (int i = 0; i < 300; ++i) {
    const Bytes bad = mutate(rng, valid);
    std::string error;
    const auto restored = World::checkpoint_restore(bad, &error);
    // Per-section CRCs make silent acceptance of a mutated envelope
    // overwhelmingly unlikely; cleanly diagnosing it is the contract. The
    // rare CRC collision would have to restore into a working world anyway.
    if (restored == nullptr) EXPECT_FALSE(error.empty());
  }

  // Truncation at every section-ish granularity: chop the envelope at 256
  // evenly spaced lengths.
  for (std::size_t cut = 0; cut < 256; ++cut) {
    const std::size_t len = valid.size() * cut / 256;
    const Bytes torn(valid.begin(),
                     valid.begin() + static_cast<std::ptrdiff_t>(len));
    std::string error;
    EXPECT_EQ(World::checkpoint_restore(torn, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

TEST(CorruptWire, ReplayBundleLoaderSurvivesMutation) {
  checkpoint::ReplayBundle bundle;
  bundle.config.seed = 77;
  bundle.run_to = 90'000;
  bundle.expected_digest = "0123456789abcdef";
  bundle.note = "corrupt-wire corpus";
  const Bytes valid = checkpoint::save_replay_bundle(bundle);
  {
    checkpoint::ReplayBundle out;
    ASSERT_TRUE(checkpoint::load_replay_bundle(valid, out));
  }

  Rng rng(0x2EB1A7);
  for (int i = 0; i < 3000; ++i) {
    const Bytes bad = mutate(rng, valid);
    checkpoint::ReplayBundle out;
    std::string error;
    if (!checkpoint::load_replay_bundle(bad, out, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(CorruptWire, ByteReaderPathologicalLengthPrefixes) {
  // Length prefixes near SIZE_MAX / UINT32_MAX must fail the bounds check,
  // not wrap it (the overflow-safe `ensure` contract).
  for (const std::uint32_t evil :
       {0xFFFFFFFFu, 0xFFFFFFF0u, 0x80000000u, 0x7FFFFFFFu}) {
    ByteWriter w;
    w.u32(evil);
    w.u8(1);  // far fewer than `evil` bytes actually present
    ByteReader r(w.data());
    EXPECT_TRUE(r.bytes().empty());
    EXPECT_FALSE(r.ok());

    ByteReader r2(w.data());
    EXPECT_TRUE(r2.str().empty());
    EXPECT_FALSE(r2.ok());

    ByteReader r3(w.data());
    const std::uint32_t n = r3.u32();
    EXPECT_TRUE(r3.view(n).empty());
    EXPECT_FALSE(r3.ok());
  }
}

}  // namespace
}  // namespace nwade::sim
