// Allocation gate for the chunked world-step kernels (ctest label: alloc).
//
// World::last_step_allocs() meters the process-wide heap-allocation counter
// around exactly the chunked fan-outs of a step — the pure-run kinematics
// kernel and the sensor-scan kernel — excluding the serial merges and emits
// around them, which send protocol messages and allocate by design. Once a
// world is warm (scratch capacities grown, sensor grids and pools sized),
// both kernels must stay at exactly zero on every subsequent step, spawns
// and exits included. Only measured in -DNWADE_COUNT_ALLOCS=ON builds; the
// default build skips.
#include <gtest/gtest.h>

#include "sim/world.h"
#include "util/alloc_stats.h"

namespace nwade::sim {
namespace {

#define REQUIRE_COUNTING()                                                  \
  if (!util::alloc_counting_enabled()) {                                    \
    GTEST_SKIP() << "build with -DNWADE_COUNT_ALLOCS=ON to arm this gate";  \
  }

TEST(WorldAllocGate, ChunkedStepKernelsAreAllocationFreeOnceWarm) {
  REQUIRE_COUNTING();
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;
  cfg.duration_ms = 90'000;
  cfg.seed = 1;

  World world(cfg);
  world.run_until(30'000);  // warm: scratch capacities, grids, pool state

  int measured = 0;
  for (Tick t = 30'000 + cfg.step_ms; t <= cfg.duration_ms; t += cfg.step_ms) {
    world.run_until(t);
    const auto allocs = world.last_step_allocs();
    ASSERT_EQ(allocs.physics, 0u) << "physics kernel allocated at t=" << t;
    ASSERT_EQ(allocs.watch, 0u) << "watch scan kernel allocated at t=" << t;
    ++measured;
  }
  EXPECT_EQ(measured, 600);  // 60 s of 100 ms steps, none skipped
}

// Same gate under an attack scenario: the deviator runs serially (its step
// has side effects), so the chunked kernels around it must stay clean.
TEST(WorldAllocGate, KernelsStayCleanUnderDeviationAttack) {
  REQUIRE_COUNTING();
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;
  cfg.duration_ms = 80'000;
  cfg.seed = 5;
  cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};

  World world(cfg);
  world.run_until(40'000);
  for (Tick t = 40'000 + cfg.step_ms; t <= cfg.duration_ms; t += cfg.step_ms) {
    world.run_until(t);
    const auto allocs = world.last_step_allocs();
    ASSERT_EQ(allocs.physics, 0u) << "physics kernel allocated at t=" << t;
    ASSERT_EQ(allocs.watch, 0u) << "watch scan kernel allocated at t=" << t;
  }
}

}  // namespace
}  // namespace nwade::sim
