// Chaos suite: whole-system safety and liveness under adversarial channel
// conditions — bursty loss, latency jitter, duplication storms, partitions,
// and an IM crash/restart cycle (docs/FAULT_MODEL.md).
//
// The safety invariant throughout: zero ground-truth conflict-zone
// collisions. Faults may cost throughput and latency, never separation.
#include <gtest/gtest.h>

#include "sim/world.h"

namespace nwade::sim {
namespace {

// The flagship profile: 20% mean loss in bursts of ~8 packets, up to 100 ms
// of jitter (heavy reordering at protocol timescales), and one IM outage
// spanning three processing windows.
net::FaultProfile chaos_profile() {
  net::FaultProfile f = net::burst_loss_profile(0.2, 8.0);
  f.jitter_ms = 100;
  f.outages.push_back(net::Outage{kImNodeId, 30'000, 33'000});
  return f;
}

TEST(Chaos, BurstLossJitterAndImOutageStaySafe) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 90'000;
  cfg.seed = 21;
  cfg.network.fault = chaos_profile();
  World world(cfg);
  world.run_until(cfg.duration_ms);
  // Settle period past the arrival window: retransmissions must eventually
  // deliver a plan to every vehicle that is still waiting.
  world.run_until(cfg.duration_ms + 20'000);
  const RunSummary s = world.summary();

  EXPECT_EQ(s.min_ground_truth_gap_violations, 0);  // never trades safety
  EXPECT_GT(s.metrics.vehicles_exited, 30);
  EXPECT_EQ(s.metrics.im_crashes, 1);
  EXPECT_EQ(s.metrics.im_restarts, 1);
  EXPECT_GT(s.metrics.plan_request_retries, 0);
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
  EXPECT_GT(s.net_stats.packets_dropped, 0u);

  // Eventual delivery: nobody is left stranded without any way forward.
  for (VehicleId id : world.vehicle_ids()) {
    const auto* v = world.vehicle(id);
    EXPECT_TRUE(v->exited() || v->has_plan() || v->degraded())
        << "vehicle " << id.value << " stuck with no plan";
  }
}

TEST(Chaos, ImCrashLosesStateAndRestartRebuildsFromChain) {
  ScenarioConfig cfg;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 60'000;
  cfg.seed = 3;
  cfg.network.fault.outages.push_back(net::Outage{kImNodeId, 30'000, 33'000});
  World world(cfg);

  world.run_until(29'000);
  EXPECT_FALSE(world.im().down());
  const std::size_t plans_before = world.im().active_plan_count();
  EXPECT_GT(plans_before, 0u);

  world.run_until(31'000);  // mid-outage: volatile state is gone
  EXPECT_TRUE(world.im().down());
  EXPECT_EQ(world.im().active_plan_count(), 0u);

  world.run_until(36'000);  // restarted: plan table rebuilt from the chain
  EXPECT_FALSE(world.im().down());
  EXPECT_GT(world.im().active_plan_count(), 0u);

  world.run_until(cfg.duration_ms);
  const RunSummary s = world.summary();
  EXPECT_EQ(s.metrics.im_crashes, 1);
  EXPECT_EQ(s.metrics.im_restarts, 1);
  EXPECT_EQ(s.min_ground_truth_gap_violations, 0);
  EXPECT_GT(s.metrics.vehicles_exited, 20);
}

TEST(Chaos, PartitionedVehicleCrossesInDegradedMode) {
  ScenarioConfig cfg;
  // Light traffic: the sensor-gated crossing needs genuine gaps in the
  // cross-traffic to commit into.
  cfg.vehicles_per_minute = 12;
  cfg.duration_ms = 150'000;
  cfg.seed = 4;
  // Vehicle 1 is fully partitioned from the IM (both directions, forever):
  // every plan request and every block broadcast to it is swallowed.
  net::LinkRule to_v1;
  to_v1.from = kImNodeId;
  to_v1.to = vehicle_node(VehicleId{1});
  net::LinkRule from_v1;
  from_v1.from = vehicle_node(VehicleId{1});
  from_v1.to = kImNodeId;
  cfg.network.fault.link_rules = {to_v1, from_v1};

  World world(cfg);
  const RunSummary s = world.run();

  // The partitioned vehicle gives up on the IM and crosses on its own
  // sensors — degraded throughput, intact safety.
  EXPECT_GE(s.metrics.degraded_entries, 1);
  EXPECT_GE(s.metrics.degraded_crossings, 1);
  auto* v1 = world.vehicle(VehicleId{1});
  ASSERT_NE(v1, nullptr);
  EXPECT_TRUE(v1->exited());
  EXPECT_GT(s.metrics.plan_request_retries, 0);
  EXPECT_EQ(s.min_ground_truth_gap_violations, 0);
  // The watch must not mistake the (IM-tracked, unmanaged) degraded crossing
  // for an attack.
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
}

TEST(Chaos, DetectionSurvivesDuplicationStorm) {
  ScenarioConfig cfg;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 80'000;
  cfg.seed = 9;
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 35'000;
  cfg.network.fault.duplicate_probability = 1.0;  // every packet arrives twice
  cfg.network.fault.jitter_ms = 50;               // ... and out of order
  const RunSummary s = World(cfg).run();

  EXPECT_GT(s.net_stats.packets_duplicated, 0u);
  // Duplicated blocks, reports, and verification rounds must neither stall
  // detection nor fabricate threats.
  EXPECT_TRUE(s.metrics.deviation_confirmed.has_value());
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
  EXPECT_GT(s.metrics.vehicles_exited, 10);
}

TEST(Chaos, DetectionUnderBurstLossStaysBounded) {
  ScenarioConfig cfg;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 80'000;
  cfg.seed = 13;
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 35'000;
  cfg.network.fault = net::burst_loss_profile(0.2, 8.0);
  const RunSummary s = World(cfg).run();

  ASSERT_TRUE(s.metrics.deviation_confirmed.has_value());
  const auto detection = s.metrics.deviation_detection_time();
  ASSERT_TRUE(detection.has_value());
  // Lost reports and verify rounds are retried/re-observed; detection slows
  // down under 20% burst loss but stays within a few watch periods.
  EXPECT_LT(*detection, 15'000);
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
  // The deviator physically closes gaps before it is evacuated; only the
  // attacker's own pre-detection violations are tolerable (same bound as the
  // mixed-traffic attack scenarios).
  EXPECT_LE(s.min_ground_truth_gap_violations, 5);
}

}  // namespace
}  // namespace nwade::sim
