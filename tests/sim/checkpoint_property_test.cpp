// Round-trip property tests for every checkpoint wire form: randomized
// values must survive save -> load -> save with byte-identical output (the
// canonical-serialization property the whole checkpoint subsystem leans on),
// and the summary digest must be a function of deterministic state only.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "net/fault.h"
#include "sim/campaign.h"
#include "sim/checkpoint.h"
#include "sim/world.h"
#include "util/bytes.h"

namespace nwade::sim {
namespace {

using Rng = std::mt19937_64;

int rint(Rng& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

double rdouble(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

protocol::Metrics random_metrics(Rng& rng) {
  protocol::Metrics m;
  auto maybe_tick = [&rng]() -> std::optional<Tick> {
    if (rint(rng, 0, 1) == 0) return std::nullopt;
    return Tick{rint(rng, 0, 200'000)};
  };
  m.violation_start = maybe_tick();
  m.first_true_incident = maybe_tick();
  m.deviation_confirmed = maybe_tick();
  m.false_incident_injected = maybe_tick();
  m.false_incident_dismissed = maybe_tick();
  m.false_global_injected = maybe_tick();
  m.false_global_detected = maybe_tick();
  m.im_conflict_injected = maybe_tick();
  m.im_conflict_detected = maybe_tick();
  m.sham_alert_detected = maybe_tick();
  for (int* counter :
       {&m.vehicles_spawned, &m.vehicles_exited, &m.incident_reports,
        &m.global_reports, &m.verify_rounds, &m.alarm_dismissals,
        &m.evacuation_alerts, &m.benign_self_evacuations,
        &m.false_alarm_evacuations, &m.malicious_reports_recorded,
        &m.blocks_published, &m.block_verification_failures,
        &m.plan_request_retries, &m.gap_block_requests, &m.degraded_entries,
        &m.degraded_crossings, &m.im_crashes, &m.im_restarts,
        &m.im_courtesy_gaps}) {
    *counter = rint(rng, 0, 10'000);
  }
  for (int i = rint(rng, 0, 8); i > 0; --i) {
    m.im_package_us.push_back(rdouble(rng, 0, 5000));
  }
  for (int i = rint(rng, 0, 8); i > 0; --i) {
    m.vehicle_verify_us.push_back(rdouble(rng, 0, 5000));
  }
  return m;
}

util::telemetry::MetricsSnapshot random_snapshot(Rng& rng) {
  util::telemetry::MetricsSnapshot snap;
  for (int i = rint(rng, 0, 6); i > 0; --i) {
    snap.counters["c" + std::to_string(rint(rng, 0, 99))] =
        rint(rng, 0, 1'000'000);
  }
  for (int i = rint(rng, 0, 6); i > 0; --i) {
    snap.gauges["g" + std::to_string(rint(rng, 0, 99))] =
        rint(rng, -1'000, 1'000'000);
  }
  for (int i = rint(rng, 0, 3); i > 0; --i) {
    util::telemetry::MetricsSnapshot::HistogramData h;
    for (int e = rint(rng, 1, 5), edge = 1; e > 0; --e, edge *= 2) {
      h.upper_edges.push_back(edge);
      h.bucket_counts.push_back(rint(rng, 0, 50));
    }
    h.bucket_counts.push_back(rint(rng, 0, 50));  // overflow bucket
    for (const std::int64_t c : h.bucket_counts) h.count += c;
    h.sum = rint(rng, 0, 100'000);
    snap.histograms["h" + std::to_string(rint(rng, 0, 99))] = std::move(h);
  }
  return snap;
}

RunSummary random_summary(Rng& rng) {
  RunSummary s;
  s.metrics = random_metrics(rng);
  s.metrics_snapshot = random_snapshot(rng);
  s.net_stats.packets_sent = static_cast<std::uint64_t>(rint(rng, 0, 1 << 20));
  s.net_stats.packets_delivered =
      static_cast<std::uint64_t>(rint(rng, 0, 1 << 20));
  s.net_stats.packets_dropped = static_cast<std::uint64_t>(rint(rng, 0, 4096));
  s.net_stats.packets_out_of_range =
      static_cast<std::uint64_t>(rint(rng, 0, 4096));
  s.net_stats.packets_duplicated =
      static_cast<std::uint64_t>(rint(rng, 0, 4096));
  s.net_stats.packets_lost_outage =
      static_cast<std::uint64_t>(rint(rng, 0, 4096));
  s.net_stats.bytes_sent = static_cast<std::uint64_t>(rint(rng, 0, 1 << 28));
  for (int i = rint(rng, 0, 4); i > 0; --i) {
    const std::string kind = "kind" + std::to_string(rint(rng, 0, 9));
    s.net_stats.packets_by_kind[kind] =
        static_cast<std::uint64_t>(rint(rng, 1, 10'000));
    s.net_stats.bytes_by_kind[kind] =
        static_cast<std::uint64_t>(rint(rng, 1, 1 << 20));
    if (rint(rng, 0, 1) != 0) {
      s.net_stats.dropped_by_kind[kind] =
          static_cast<std::uint64_t>(rint(rng, 1, 100));
    }
  }
  s.throughput_vpm = rdouble(rng, 0, 200);
  s.mean_crossing_ms = rdouble(rng, 0, 60'000);
  s.active_at_end = rint(rng, 0, 200);
  s.min_ground_truth_gap_violations = rint(rng, 0, 10);
  s.legacy_spawned = rint(rng, 0, 100);
  s.legacy_exited = rint(rng, 0, 100);
  return s;
}

ScenarioConfig random_scenario(Rng& rng) {
  ScenarioConfig s;
  s.intersection.kind =
      traffic::kAllIntersectionKinds[rint(rng, 0, 4) % 5];
  s.vehicles_per_minute = rdouble(rng, 10, 200);
  s.duration_ms = rint(rng, 10'000, 600'000);
  s.step_ms = 100;
  s.seed = static_cast<std::uint64_t>(rint(rng, 1, 1 << 30));
  s.nwade.deviation_tolerance_m = rdouble(rng, 1, 10);
  s.nwade.verification_round_ms = rint(rng, 100, 2000);
  s.nwade.plan_grace_ms = rint(rng, 0, 5000);
  s.nwade.double_check_verification = rint(rng, 0, 1) != 0;
  s.nwade.chain_depth = static_cast<std::size_t>(rint(rng, 4, 256));
  s.scheduler.margin_ms = rint(rng, 100, 2000);
  s.network.latency_ms = rint(rng, 1, 100);
  s.network.loss_probability = rdouble(rng, 0, 0.3);
  s.network.seed = static_cast<std::uint64_t>(rint(rng, 1, 1 << 30));
  if (rint(rng, 0, 1) != 0) {
    s.network.fault = net::burst_loss_profile(rdouble(rng, 0.01, 0.3),
                                              rdouble(rng, 1.5, 8.0));
    s.network.fault.jitter_ms = rint(rng, 0, 80);
    s.network.fault.duplicate_probability = rdouble(rng, 0, 0.2);
  }
  for (int i = rint(rng, 0, 2); i > 0; --i) {
    net::LinkRule rule;
    rule.from = NodeId{static_cast<std::uint64_t>(rint(rng, 0, 50))};
    rule.kind = rint(rng, 0, 1) != 0 ? "Block" : "";
    rule.drop_probability = rdouble(rng, 0.1, 1.0);
    rule.active_from = rint(rng, 0, 50'000);
    rule.active_until = rint(rng, 50'000, 100'000);
    s.network.fault.link_rules.push_back(rule);
  }
  for (int i = rint(rng, 0, 2); i > 0; --i) {
    net::Outage outage;
    outage.node = NodeId{static_cast<std::uint64_t>(rint(rng, 1, 50))};
    outage.from = rint(rng, 0, 50'000);
    outage.until = outage.from + rint(rng, 1000, 20'000);
    s.network.fault.outages.push_back(outage);
  }
  s.signer = static_cast<SignerKind>(rint(rng, 0, 2));
  s.attack = protocol::table1_attack_settings()[static_cast<std::size_t>(
      rint(rng, 0, 10))];
  s.attack_time = rint(rng, 10'000, 100'000);
  s.nwade_enabled = rint(rng, 0, 9) != 0;
  s.legacy_fraction = rint(rng, 0, 1) != 0 ? rdouble(rng, 0, 0.5) : 0.0;
  s.quadratic_reference = rint(rng, 0, 9) == 0;
  s.trace_enabled = rint(rng, 0, 1) != 0;
  return s;
}

template <typename T, typename Save, typename Load>
void expect_round_trip(const T& value, Save save, Load load) {
  ByteWriter w;
  save(w, value);
  const Bytes first = w.data();

  ByteReader r(first);
  T loaded{};
  ASSERT_TRUE(load(r, loaded));
  EXPECT_TRUE(r.at_end());

  ByteWriter w2;
  save(w2, loaded);
  EXPECT_EQ(first, w2.data());
}

TEST(CheckpointProperty, ScenarioConfigRoundTripIsByteIdentical) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 50; ++i) {
    const ScenarioConfig original = random_scenario(rng);
    expect_round_trip(
        original,
        [](ByteWriter& w, const ScenarioConfig& v) {
          checkpoint::save_scenario_config(w, v);
        },
        [](ByteReader& r, ScenarioConfig& v) {
          return checkpoint::load_scenario_config(r, v);
        });
  }
}

TEST(CheckpointProperty, MetricsRoundTripIsByteIdentical) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 50; ++i) {
    expect_round_trip(
        random_metrics(rng),
        [](ByteWriter& w, const protocol::Metrics& v) {
          checkpoint::save_metrics(w, v, /*include_wall_samples=*/true);
        },
        [](ByteReader& r, protocol::Metrics& v) {
          return checkpoint::load_metrics(r, v);
        });
  }
}

TEST(CheckpointProperty, MetricsWithoutWallSamplesLoadsEmptySamples) {
  Rng rng(0xABCD);
  const protocol::Metrics m = random_metrics(rng);
  ByteWriter w;
  checkpoint::save_metrics(w, m, /*include_wall_samples=*/false);
  ByteReader r(w.data());
  protocol::Metrics loaded;
  ASSERT_TRUE(checkpoint::load_metrics(r, loaded));
  EXPECT_TRUE(loaded.im_package_us.empty());
  EXPECT_TRUE(loaded.vehicle_verify_us.empty());
  EXPECT_EQ(loaded.vehicles_spawned, m.vehicles_spawned);
  EXPECT_EQ(loaded.deviation_confirmed, m.deviation_confirmed);
}

TEST(CheckpointProperty, MetricsSnapshotRoundTripIsByteIdentical) {
  Rng rng(0xF00D);
  for (int i = 0; i < 50; ++i) {
    expect_round_trip(
        random_snapshot(rng),
        [](ByteWriter& w, const util::telemetry::MetricsSnapshot& v) {
          checkpoint::save_metrics_snapshot(w, v);
        },
        [](ByteReader& r, util::telemetry::MetricsSnapshot& v) {
          return checkpoint::load_metrics_snapshot(r, v);
        });
  }
}

TEST(CheckpointProperty, RunSummaryRoundTripIsByteIdentical) {
  Rng rng(0x5EED);
  for (int i = 0; i < 30; ++i) {
    expect_round_trip(
        random_summary(rng),
        [](ByteWriter& w, const RunSummary& v) {
          checkpoint::save_run_summary(w, v);
        },
        [](ByteReader& r, RunSummary& v) {
          return checkpoint::load_run_summary(r, v);
        });
  }
}

TEST(CheckpointProperty, DigestIgnoresWallClockSamplesOnly) {
  Rng rng(0xD16E57);
  RunSummary a = random_summary(rng);
  RunSummary b = a;
  // The wall-clock vectors are machine noise; two runs of the same scenario
  // must digest identically no matter what the host's timers measured.
  b.metrics.im_package_us = {1.0, 2.0, 3.0};
  b.metrics.vehicle_verify_us.push_back(123.0);
  EXPECT_EQ(checkpoint::run_summary_digest(a), checkpoint::run_summary_digest(b));

  // Any deterministic field, by contrast, must move the digest.
  RunSummary c = a;
  c.metrics.vehicles_exited += 1;
  EXPECT_NE(checkpoint::run_summary_digest(a), checkpoint::run_summary_digest(c));
}

TEST(CheckpointProperty, ReplayBundleRoundTrips) {
  Rng rng(0x1CEB00);
  for (int i = 0; i < 20; ++i) {
    checkpoint::ReplayBundle bundle;
    bundle.config = random_scenario(rng);
    bundle.run_to = rint(rng, 0, 600'000);
    bundle.expected_digest = "deadbeef" + std::to_string(i);
    bundle.note = i % 2 == 0 ? "soak invariant violation" : "";
    const Bytes blob = checkpoint::save_replay_bundle(bundle);

    checkpoint::ReplayBundle loaded;
    ASSERT_TRUE(checkpoint::load_replay_bundle(blob, loaded));
    EXPECT_EQ(loaded.run_to, bundle.run_to);
    EXPECT_EQ(loaded.expected_digest, bundle.expected_digest);
    EXPECT_EQ(loaded.note, bundle.note);
    EXPECT_EQ(checkpoint::save_replay_bundle(loaded), blob);
  }
}

TEST(CheckpointProperty, WorldSaveLoadSaveOnRandomizedScenarios) {
  // Whole-envelope property over scenarios the golden suite never pins:
  // random kind/density/faults, saved mid-run, must restore to a world that
  // re-saves the exact same bytes.
  Rng rng(0x5A7E);
  for (int i = 0; i < 3; ++i) {
    ScenarioConfig s = random_scenario(rng);
    s.duration_ms = 30'000;
    s.vehicles_per_minute = rdouble(rng, 30, 90);
    s.trace_enabled = false;
    s.quadratic_reference = false;
    s.signer = SignerKind::kHmac;  // keep the property loop fast
    World world(s);
    world.run_until(rint(rng, 5, 20) * 1000);

    const Bytes blob = world.checkpoint_save();
    std::string error;
    const auto restored = World::checkpoint_restore(blob, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(restored->checkpoint_save(), blob) << "scenario " << i;
  }
}

TEST(CampaignFingerprint, IgnoresExecutionKnobsOnly) {
  CampaignConfig cfg;
  cfg.attacks = {"benign", "V1"};
  cfg.densities_vpm = {60, 120};
  cfg.rounds = 2;
  const std::string base = campaign_fingerprint(cfg);

  // threads/trace change how the campaign executes, never what it computes.
  CampaignConfig threads = cfg;
  threads.threads = 8;
  EXPECT_EQ(campaign_fingerprint(threads), base);

  CampaignConfig axes = cfg;
  axes.densities_vpm = {60, 121};
  EXPECT_NE(campaign_fingerprint(axes), base);

  CampaignConfig seed = cfg;
  seed.base_seed = 2;
  EXPECT_NE(campaign_fingerprint(seed), base);

  CampaignConfig rounds = cfg;
  rounds.rounds = 3;
  EXPECT_NE(campaign_fingerprint(rounds), base);

  // The base scenario is part of the identity: a journal recorded under one
  // fault profile must not resume a campaign under another.
  CampaignConfig faults = cfg;
  faults.base.network.loss_probability = 0.1;
  EXPECT_NE(campaign_fingerprint(faults), base);
}

}  // namespace
}  // namespace nwade::sim
