// Bit-exact checkpoint/resume: saving a World mid-run, restoring it, and
// continuing must reproduce the trace-golden digest of the uninterrupted run
// byte for byte — including checkpoints placed INSIDE an active verification
// round, where pending tally deadlines and in-flight VerifyRequests must
// survive the round trip at their exact event-queue coordinates.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "crypto/sha256.h"
#include "sim/checkpoint.h"
#include "sim/world.h"
#include "util/bytes.h"

namespace nwade::sim {
namespace {

void fold_optional_tick(ByteWriter& w, const std::optional<Tick>& t) {
  w.u8(t.has_value() ? 1 : 0);
  w.i64(t.value_or(0));
}

void fold_kind_map(ByteWriter& w,
                   const std::unordered_map<std::string, std::uint64_t>& m) {
  std::map<std::string, std::uint64_t> sorted(m.begin(), m.end());
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& [kind, count] : sorted) {
    w.str(kind);
    w.u64(count);
  }
}

/// trace_golden_test's digest fold, applied to an already-constructed world
/// (possibly one restored from a checkpoint earlier than the 60 s midpoint):
/// drive to t=60 s, fold every vehicle's chain view, finish, fold the summary.
std::string finish_digest(World& world) {
  ByteWriter w;
  world.run_until(60'000);
  for (const VehicleId id : world.vehicle_ids()) {
    const protocol::VehicleNode* v = world.vehicle(id);
    if (v == nullptr) continue;
    w.u64(id.value);
    const auto& store = v->store();
    w.u64(store.size());
    for (const auto& block : store.blocks()) {
      w.u64(block.seq);
      w.i64(block.timestamp);
      w.bytes(block.merkle_root);
      for (const auto& plan : block.plans()) w.bytes(plan.serialize());
    }
  }

  const RunSummary s = world.run();

  const protocol::Metrics& m = s.metrics;
  fold_optional_tick(w, m.violation_start);
  fold_optional_tick(w, m.first_true_incident);
  fold_optional_tick(w, m.deviation_confirmed);
  fold_optional_tick(w, m.false_incident_injected);
  fold_optional_tick(w, m.false_incident_dismissed);
  fold_optional_tick(w, m.false_global_injected);
  fold_optional_tick(w, m.false_global_detected);
  fold_optional_tick(w, m.im_conflict_injected);
  fold_optional_tick(w, m.im_conflict_detected);
  fold_optional_tick(w, m.sham_alert_detected);
  for (const int counter :
       {m.vehicles_spawned, m.vehicles_exited, m.incident_reports,
        m.global_reports, m.verify_rounds, m.alarm_dismissals,
        m.evacuation_alerts, m.benign_self_evacuations,
        m.false_alarm_evacuations, m.malicious_reports_recorded,
        m.blocks_published, m.block_verification_failures,
        m.plan_request_retries, m.gap_block_requests, m.degraded_entries,
        m.degraded_crossings, m.im_crashes, m.im_restarts,
        m.im_courtesy_gaps}) {
    w.i64(counter);
  }

  const net::NetworkStats& n = s.net_stats;
  w.u64(n.packets_sent);
  w.u64(n.packets_delivered);
  w.u64(n.packets_dropped);
  w.u64(n.packets_out_of_range);
  w.u64(n.packets_duplicated);
  w.u64(n.packets_lost_outage);
  w.u64(n.bytes_sent);
  fold_kind_map(w, n.packets_by_kind);
  fold_kind_map(w, n.bytes_by_kind);
  fold_kind_map(w, n.dropped_by_kind);

  w.f64(s.throughput_vpm);
  w.f64(s.mean_crossing_ms);
  w.i64(s.active_at_end);
  w.i64(s.min_ground_truth_gap_violations);
  w.i64(s.legacy_spawned);
  w.i64(s.legacy_exited);

  return crypto::digest_hex(crypto::sha256(w.data()));
}

ScenarioConfig scenario(traffic::IntersectionKind kind, double vpm,
                        std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.intersection.kind = kind;
  cfg.vehicles_per_minute = vpm;
  cfg.duration_ms = 120'000;
  cfg.seed = seed;
  return cfg;
}

/// Runs to `checkpoint_at`, saves, restores into a fresh world, and finishes
/// the restored world. The result must match the uninterrupted golden digest.
std::string resumed_digest(ScenarioConfig cfg, Tick checkpoint_at) {
  World original(std::move(cfg));
  original.run_until(checkpoint_at);
  const Bytes blob = original.checkpoint_save();

  std::string error;
  std::unique_ptr<World> resumed = World::checkpoint_restore(blob, &error);
  EXPECT_NE(resumed, nullptr) << error;
  if (resumed == nullptr) return "";
  EXPECT_EQ(resumed->now(), checkpoint_at);
  return finish_digest(*resumed);
}

// --- golden-digest resume: the four trace-golden scenarios ------------------

TEST(CheckpointResume, BenignCross4) {
  EXPECT_EQ(
      resumed_digest(scenario(traffic::IntersectionKind::kCross4, 80, 1), 30'000),
      "0e83bbd0a51d8df2b9ea6241bfb16e70f3e62c285ccd24da7b3aa131a39b0e2b");
}

TEST(CheckpointResume, DenseCross4) {
  EXPECT_EQ(
      resumed_digest(scenario(traffic::IntersectionKind::kCross4, 120, 7), 45'000),
      "85792ecf2b608ab59daf55da1128614dbdd3daad0fa8dd3488f5432c413ee89c");
}

TEST(CheckpointResume, MixedTrafficRoundabout) {
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kRoundabout3, 60, 3);
  cfg.legacy_fraction = 0.25;
  EXPECT_EQ(resumed_digest(std::move(cfg), 30'000),
            "f14c0b8ae02954f23ab4190f1b0e782548ca72a633e9997207db0e889e227f89");
}

TEST(CheckpointResume, DeviationAttackCross4) {
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 80, 5);
  cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
  EXPECT_EQ(resumed_digest(std::move(cfg), 30'000),
            "7aee66a07164ede3f6bf1b783fc7559c61fb310851d6166934911d7b4ea3587c");
}

// --- checkpoint INSIDE a verification round ---------------------------------

TEST(CheckpointResume, InsideVerificationRound) {
  // Table I's V1 attacker goes physically off-plan at t=40 s and watchers
  // report it. With the default 1000 ft perception radius the IM sees the
  // whole intersection and resolves incident reports by direct perception —
  // voting rounds never open — so the radius is shrunk until the IM must
  // poll witnesses. No stored golden at this radius; the oracle is the
  // uninterrupted run of the same config computed in-process. Stepping
  // 100 ms at a time, grab the first boundary where a round is live and
  // checkpoint THERE — in-flight VerifyRequests sit in the network queue and
  // the tally timer must re-arm at its original (when, seq).
  const auto myopic_im = [] {
    ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 60, 12345);
    cfg.attack = protocol::attack_setting_by_name("V1");
    cfg.nwade.im_perception_radius_m = 10.0;
    return cfg;
  };

  World oracle(myopic_im());
  const std::string expected = finish_digest(oracle);

  World original(myopic_im());
  Tick checkpoint_at = 0;
  for (Tick t = 40'000; t <= 55'000; t += 100) {
    original.run_until(t);
    if (original.im().active_verification_rounds() > 0) {
      checkpoint_at = t;
      break;
    }
  }
  ASSERT_GT(checkpoint_at, 0) << "no verification round opened by t=55s";

  const Bytes blob = original.checkpoint_save();
  std::string error;
  std::unique_ptr<World> resumed = World::checkpoint_restore(blob, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_GT(resumed->im().active_verification_rounds(), 0u);
  EXPECT_EQ(finish_digest(*resumed), expected);
}

// --- chaos: checkpoint in the middle of an active fault burst ---------------

TEST(CheckpointResume, MidFaultBurstMatchesUninterrupted) {
  // Bursty loss + jitter + duplication + an IM outage spanning the
  // checkpoint: the Gilbert–Elliott chain state, the fault RNG position, the
  // pending (jittered, duplicated) deliveries, and the scheduled IM restart
  // must all survive. No stored golden here — the oracle is the
  // uninterrupted run of the same scenario computed in-process.
  const auto chaos_scenario = [] {
    ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 80, 11);
    cfg.network.fault = net::burst_loss_profile(0.10, 4.0);
    cfg.network.fault.jitter_ms = 40;
    cfg.network.fault.duplicate_probability = 0.05;
    cfg.network.fault.outages.push_back(net::Outage{kImNodeId, 28'000, 36'000});
    return cfg;
  };

  World uninterrupted(chaos_scenario());
  const std::string expected = finish_digest(uninterrupted);

  // 30'000 sits inside the outage: the IM is down, its restart event is
  // pending, and vehicles are mid-backoff on plan-request retransmissions.
  EXPECT_EQ(resumed_digest(chaos_scenario(), 30'000), expected);
}

// --- save/load/save byte-equality -------------------------------------------

TEST(CheckpointResume, SaveLoadSaveIsByteIdentical) {
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 80, 5);
  cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
  World original(std::move(cfg));
  original.run_until(42'000);

  const Bytes blob = original.checkpoint_save();
  std::string error;
  std::unique_ptr<World> resumed = World::checkpoint_restore(blob, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->checkpoint_save(), blob);
}

TEST(CheckpointResume, ResumeOfResumeStaysExact) {
  // Two nested interruptions: checkpoint at 20 s, resume, checkpoint the
  // resumed world at 35 s, resume again, finish. Still the golden digest.
  World original(scenario(traffic::IntersectionKind::kCross4, 80, 1));
  original.run_until(20'000);
  std::unique_ptr<World> first =
      World::checkpoint_restore(original.checkpoint_save());
  ASSERT_NE(first, nullptr);
  first->run_until(35'000);
  std::unique_ptr<World> second =
      World::checkpoint_restore(first->checkpoint_save());
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(finish_digest(*second),
            "0e83bbd0a51d8df2b9ea6241bfb16e70f3e62c285ccd24da7b3aa131a39b0e2b");
}

// --- malformed input --------------------------------------------------------

TEST(CheckpointRestore, RejectsCorruptEnvelope) {
  World world(scenario(traffic::IntersectionKind::kCross4, 80, 1));
  world.run_until(5'000);
  Bytes blob = world.checkpoint_save();

  std::string error;
  EXPECT_EQ(World::checkpoint_restore(Bytes{}, &error), nullptr);
  EXPECT_EQ(World::checkpoint_restore(Bytes{0x00, 0x01, 0x02}, &error), nullptr);

  // Flip one payload byte: the section CRC must catch it.
  Bytes corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0xFF;
  EXPECT_EQ(World::checkpoint_restore(corrupt, &error), nullptr);
  EXPECT_FALSE(error.empty());

  // Truncations at every prefix length must fail cleanly, never crash.
  for (const std::size_t len :
       {std::size_t{1}, blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_EQ(World::checkpoint_restore(truncated, &error), nullptr)
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace nwade::sim
