// Lock-step equivalence: the spatial-index stepping paths (sensor queries,
// legacy car-following lookup, ground-truth gap audit, broadcast range scan)
// must make bit-identical decisions to the quadratic_reference brute-force
// loops they replaced. Two worlds with identical configs — one per mode —
// are stepped side by side through each golden-trace scenario, comparing the
// full deterministic summary and live sense_around() answers at every
// checkpoint, not just at the end.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/world.h"

namespace nwade::sim {
namespace {

// The four golden-trace scenarios (tests/sim/trace_golden_test.cpp) — same
// kinds, densities, seeds, and attack settings, so this suite certifies
// equivalence exactly where the digest locks watch for drift.
ScenarioConfig golden(traffic::IntersectionKind kind, double vpm,
                      std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.intersection.kind = kind;
  cfg.vehicles_per_minute = vpm;
  cfg.duration_ms = 120'000;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::pair<std::string, ScenarioConfig>> golden_scenarios() {
  std::vector<std::pair<std::string, ScenarioConfig>> out;
  out.emplace_back("BenignCross4",
                   golden(traffic::IntersectionKind::kCross4, 80, 1));
  out.emplace_back("DenseCross4",
                   golden(traffic::IntersectionKind::kCross4, 120, 7));
  {
    ScenarioConfig cfg = golden(traffic::IntersectionKind::kRoundabout3, 60, 3);
    cfg.legacy_fraction = 0.25;  // exercises the car-following lookup
    out.emplace_back("MixedTrafficRoundabout", cfg);
  }
  {
    ScenarioConfig cfg = golden(traffic::IntersectionKind::kCross4, 80, 5);
    cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
    out.emplace_back("DeviationAttackCross4", cfg);
  }
  return out;
}

// %a renders doubles exactly (hex float), so equality below means
// bit-identical, not merely close.
std::string fingerprint(const RunSummary& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "spawned=%d exited=%d thr=%a cross=%a active=%d gaps=%d "
      "legacy=%d/%d inc=%d glob=%d alerts=%d false=%d degraded=%d blocks=%d "
      "sent=%llu delivered=%llu dropped=%llu oor=%llu bytes=%llu",
      s.metrics.vehicles_spawned, s.metrics.vehicles_exited, s.throughput_vpm,
      s.mean_crossing_ms, s.active_at_end, s.min_ground_truth_gap_violations,
      s.legacy_spawned, s.legacy_exited, s.metrics.incident_reports,
      s.metrics.global_reports, s.metrics.evacuation_alerts,
      s.metrics.false_alarm_evacuations, s.metrics.degraded_entries,
      s.metrics.blocks_published,
      static_cast<unsigned long long>(s.net_stats.packets_sent),
      static_cast<unsigned long long>(s.net_stats.packets_delivered),
      static_cast<unsigned long long>(s.net_stats.packets_dropped),
      static_cast<unsigned long long>(s.net_stats.packets_out_of_range),
      static_cast<unsigned long long>(s.net_stats.bytes_sent));
  return buf;
}

std::string render(const std::vector<protocol::Observation>& obs) {
  std::string out;
  char buf[256];
  for (const auto& o : obs) {
    std::snprintf(buf, sizeof(buf),
                  "[id=%llu b=%u m=%u c=%u len=%a pos=(%a,%a) v=%a h=%a]",
                  static_cast<unsigned long long>(o.id.value), o.traits.brand,
                  o.traits.model, o.traits.color, o.traits.length_m,
                  o.status.position.x, o.status.position.y,
                  o.status.speed_mps, o.status.heading_rad);
    out += buf;
  }
  return out;
}

TEST(WorldEquivalence, QuadraticAndIndexedRunsLockStep) {
  // Probes chosen to straddle grid-cell boundaries: the staging approaches,
  // the conflict core, and a far point whose disc exceeds the occupied area.
  const struct {
    geom::Vec2 center;
    double radius;
  } probes[] = {
      {{0.0, 0.0}, 20.0},   {{0.0, 0.0}, 45.0},  {{32.0, 0.0}, 45.0},
      {{0.0, -64.0}, 30.0}, {{-40.0, 40.0}, 120.0},
  };

  for (const auto& [name, cfg] : golden_scenarios()) {
    SCOPED_TRACE(name);
    ScenarioConfig quad_cfg = cfg;
    quad_cfg.quadratic_reference = true;
    ScenarioConfig idx_cfg = cfg;
    idx_cfg.quadratic_reference = false;
    World quad(quad_cfg);
    World indexed(idx_cfg);

    for (Tick t = 5'000; t <= cfg.duration_ms; t += 5'000) {
      quad.run_until(t);
      indexed.run_until(t);
      ASSERT_EQ(fingerprint(quad.summary()), fingerprint(indexed.summary()))
          << name << " diverged at t=" << t;
      for (const auto& p : probes) {
        ASSERT_EQ(render(quad.sense_around(p.center, p.radius, VehicleId{})),
                  render(indexed.sense_around(p.center, p.radius, VehicleId{})))
            << name << " sense_around mismatch at t=" << t << " center=("
            << p.center.x << "," << p.center.y << ") r=" << p.radius;
      }
    }
    EXPECT_EQ(quad.vehicle_ids(), indexed.vehicle_ids());
  }
}

// The SoA vehicle columns and the chunked phase kernels replaced the
// retained AoS stepping loops. Like the spatial index, they are only
// allowed to reorganize memory and work — never to change a result byte.
// `aos_reference` pins the old layout (per-node kinematic members, serial
// monolithic loops); the default runs the SoA columns with fixed-boundary
// chunk execution. Lock-step through every golden scenario.
TEST(WorldEquivalence, SoAColumnsAndAoSReferenceRunLockStep) {
  const struct {
    geom::Vec2 center;
    double radius;
  } probes[] = {
      {{0.0, 0.0}, 20.0},   {{0.0, 0.0}, 45.0},  {{32.0, 0.0}, 45.0},
      {{0.0, -64.0}, 30.0}, {{-40.0, 40.0}, 120.0},
  };

  for (const auto& [name, cfg] : golden_scenarios()) {
    SCOPED_TRACE(name);
    ScenarioConfig aos_cfg = cfg;
    aos_cfg.aos_reference = true;
    World aos(aos_cfg);
    World soa(cfg);

    for (Tick t = 5'000; t <= cfg.duration_ms; t += 5'000) {
      aos.run_until(t);
      soa.run_until(t);
      ASSERT_EQ(fingerprint(aos.summary()), fingerprint(soa.summary()))
          << name << " diverged at t=" << t;
      for (const auto& p : probes) {
        ASSERT_EQ(render(aos.sense_around(p.center, p.radius, VehicleId{})),
                  render(soa.sense_around(p.center, p.radius, VehicleId{})))
            << name << " sense_around mismatch at t=" << t << " center=("
            << p.center.x << "," << p.center.y << ") r=" << p.radius;
      }
    }
    EXPECT_EQ(aos.vehicle_ids(), soa.vehicle_ids());
  }
}

// The broadcast pre-filter must also leave the channel accounting untouched:
// packets_out_of_range counts every non-receiver the same way the all-pairs
// scan did. (Covered by the fingerprint above, asserted separately so a
// regression names the field.)
TEST(WorldEquivalence, OutOfRangeAccountingMatches) {
  ScenarioConfig cfg = golden(traffic::IntersectionKind::kCross4, 120, 7);
  cfg.duration_ms = 30'000;
  ScenarioConfig quad_cfg = cfg;
  quad_cfg.quadratic_reference = true;
  const RunSummary a = World(quad_cfg).run();
  const RunSummary b = World(cfg).run();
  EXPECT_EQ(a.net_stats.packets_out_of_range, b.net_stats.packets_out_of_range);
  EXPECT_EQ(a.net_stats.packets_sent, b.net_stats.packets_sent);
  EXPECT_EQ(a.net_stats.packets_delivered, b.net_stats.packets_delivered);
}

}  // namespace
}  // namespace nwade::sim
