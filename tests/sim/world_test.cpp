// End-to-end runs of the full stack: traffic + network + IM + vehicles +
// NWADE, under benign and attacked conditions.
#include "sim/world.h"

#include <gtest/gtest.h>

namespace nwade::sim {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 90'000;
  cfg.seed = 12345;
  return cfg;
}

TEST(BenignRun, TrafficFlows) {
  World world(base_config());
  const RunSummary s = world.run();
  EXPECT_GT(s.metrics.vehicles_spawned, 50);
  EXPECT_GT(s.metrics.vehicles_exited, 20);
  EXPECT_GT(s.throughput_vpm, 10.0);
  EXPECT_GT(s.metrics.blocks_published, 30);
  // Nothing suspicious happened.
  EXPECT_EQ(s.metrics.incident_reports, 0);
  EXPECT_EQ(s.metrics.global_reports, 0);
  EXPECT_EQ(s.metrics.evacuation_alerts, 0);
  EXPECT_EQ(s.metrics.benign_self_evacuations, 0);
  EXPECT_EQ(s.metrics.block_verification_failures, 0);
}

TEST(BenignRun, DeterministicForSameSeed) {
  const RunSummary a = World(base_config()).run();
  const RunSummary b = World(base_config()).run();
  EXPECT_EQ(a.metrics.vehicles_exited, b.metrics.vehicles_exited);
  EXPECT_EQ(a.net_stats.packets_sent, b.net_stats.packets_sent);
  EXPECT_DOUBLE_EQ(a.mean_crossing_ms, b.mean_crossing_ms);
}

TEST(BenignRun, VehiclesHoldVerifiedChains) {
  ScenarioConfig cfg = base_config();
  cfg.duration_ms = 45'000;
  World world(cfg);
  world.run_until(cfg.duration_ms);
  int with_plans = 0;
  for (VehicleId id : world.vehicle_ids()) {
    const auto* v = world.vehicle(id);
    if (v->has_plan()) ++with_plans;
    EXPECT_NE(v->state(), protocol::VehicleState::kSelfEvacuation);
  }
  EXPECT_GT(with_plans, 10);
}

TEST(BenignRun, NoGroundTruthNearCollisions) {
  ScenarioConfig cfg = base_config();
  cfg.vehicles_per_minute = 100;
  const RunSummary s = World(cfg).run();
  EXPECT_EQ(s.min_ground_truth_gap_violations, 0)
      << "benign plan-following traffic must never come within 1.5 m";
}

TEST(V1Attack, DeviationDetectedAndConfirmed) {
  ScenarioConfig cfg = base_config();
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 40'000;
  const RunSummary s = World(cfg).run();
  ASSERT_TRUE(s.metrics.violation_start.has_value());
  ASSERT_TRUE(s.metrics.first_true_incident.has_value())
      << "a benign watcher must report the deviator";
  ASSERT_TRUE(s.metrics.deviation_confirmed.has_value());
  EXPECT_GE(*s.metrics.first_true_incident, *s.metrics.violation_start);
  EXPECT_GE(*s.metrics.deviation_confirmed, *s.metrics.first_true_incident);
  EXPECT_GE(s.metrics.evacuation_alerts, 1);
  // Detection happens within seconds of the physical deviation.
  EXPECT_LT(*s.metrics.deviation_confirmed - *s.metrics.violation_start, 10'000);
}

TEST(V2Attack, FalseIncidentDismissed) {
  ScenarioConfig cfg = base_config();
  cfg.attack = protocol::attack_setting_by_name("V2");
  cfg.attack_time = 40'000;
  const RunSummary s = World(cfg).run();
  // The false report against a benign vehicle was sent and dismissed.
  ASSERT_TRUE(s.metrics.false_incident_injected.has_value());
  EXPECT_TRUE(s.metrics.false_incident_dismissed.has_value())
      << "benign IM must dismiss the fabricated report";
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0)
      << "a single false reporter must not trigger any evacuation";
  // The real deviation is still caught.
  EXPECT_TRUE(s.metrics.deviation_confirmed.has_value());
}

TEST(V2Attack, TypeBFalseGlobalRefuted) {
  ScenarioConfig cfg = base_config();
  cfg.attack = protocol::attack_setting_by_name("V2");
  cfg.false_report_kind = protocol::FalseReportKind::kWrongPlans;
  cfg.attack_time = 40'000;
  const RunSummary s = World(cfg).run();
  ASSERT_TRUE(s.metrics.false_global_injected.has_value());
  EXPECT_TRUE(s.metrics.false_global_detected.has_value())
      << "peers holding the clean block must refute the claim";
  // Nobody evacuated over the lie.
  EXPECT_EQ(s.metrics.false_alarm_evacuations, 0);
  ASSERT_TRUE(s.metrics.false_global_detection_time().has_value());
  EXPECT_LT(*s.metrics.false_global_detection_time(), 5'000);
}

TEST(ImAttack, ConflictingPlansCaughtByVehicles) {
  ScenarioConfig cfg = base_config();
  cfg.attack = protocol::attack_setting_by_name("IM");
  cfg.attack_time = 30'000;
  const RunSummary s = World(cfg).run();
  ASSERT_TRUE(s.metrics.im_conflict_injected.has_value())
      << "the malicious IM must find a pair to collide";
  ASSERT_TRUE(s.metrics.im_conflict_detected.has_value());
  EXPECT_GE(*s.metrics.im_conflict_detected, *s.metrics.im_conflict_injected);
  // Block verification catches it fast (one broadcast latency).
  EXPECT_LT(*s.metrics.im_conflict_detected - *s.metrics.im_conflict_injected, 2'000);
  EXPECT_GT(s.metrics.block_verification_failures, 0);
  EXPECT_GT(s.metrics.benign_self_evacuations, 0)
      << "vehicles that saw the bad block must self-evacuate";
  EXPECT_GT(s.metrics.global_reports, 0);
}

TEST(ImV1Attack, SilentImForcesSelfEvacuation) {
  ScenarioConfig cfg = base_config();
  cfg.attack = protocol::attack_setting_by_name("IM_V1");
  cfg.im_attack_mode = protocol::ImAttackMode::kSilence;  // pure stonewalling
  cfg.attack_time = 40'000;
  const RunSummary s = World(cfg).run();
  ASSERT_TRUE(s.metrics.violation_start.has_value());
  ASSERT_TRUE(s.metrics.first_true_incident.has_value());
  // The IM never answers: no dismissals, no alerts for the true report.
  EXPECT_EQ(s.metrics.evacuation_alerts, 0);
  // The reporter times out, self-evacuates, and the threat still counts as
  // recognized (confirmed via the global path).
  EXPECT_GT(s.metrics.benign_self_evacuations, 0);
  ASSERT_TRUE(s.metrics.deviation_confirmed.has_value());
}

TEST(NwadeDisabled, NoSecurityTrafficStillFlows) {
  ScenarioConfig cfg = base_config();
  cfg.nwade_enabled = false;
  const RunSummary s = World(cfg).run();
  EXPECT_GT(s.metrics.vehicles_exited, 20);
  EXPECT_EQ(s.metrics.incident_reports, 0);
  EXPECT_EQ(s.metrics.vehicle_verify_us.size(), 0u);
}

TEST(NwadeOverhead, ThroughputUnaffected) {
  // Fig. 8's claim: adding NWADE leaves throughput essentially unchanged.
  ScenarioConfig on = base_config();
  ScenarioConfig off = base_config();
  off.nwade_enabled = false;
  const RunSummary s_on = World(on).run();
  const RunSummary s_off = World(off).run();
  EXPECT_NEAR(s_on.throughput_vpm, s_off.throughput_vpm,
              0.05 * s_off.throughput_vpm + 1.0);
}

TEST(Sensors, WorldImplementsProvider) {
  ScenarioConfig cfg = base_config();
  World world(cfg);
  world.run_until(30'000);
  const auto ids = world.vehicle_ids();
  ASSERT_FALSE(ids.empty());
  // observe() sees active vehicles and returns consistent positions.
  int observed = 0;
  for (VehicleId id : ids) {
    const auto obs = world.observe(id);
    if (!obs) continue;
    ++observed;
    EXPECT_EQ(obs->id, id);
    const auto nearby = world.sense_around(obs->status.position, 50.0, id);
    for (const auto& n : nearby) {
      EXPECT_NE(n.id, id);
      EXPECT_LE(n.status.position.distance_to(obs->status.position), 50.0 + 1e-9);
    }
  }
  EXPECT_GT(observed, 0);
}

}  // namespace
}  // namespace nwade::sim
