// Intra-world parallelism determinism lock (ctest label: chaos, so the
// TSan tree vets the chunked fan-out): `ScenarioConfig::step_threads` may
// only change the wall clock, never a result byte. The chunked physics /
// watch / gap-audit kernels use fixed chunk boundaries and fixed-order
// merges, and the batched signature prefetch is required to leave both the
// verify-cache content and its hit/miss statistics exactly as the serial
// path does — so any thread count must reproduce the single-threaded run
// bit for bit, summary digest included.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/world.h"

namespace nwade::sim {
namespace {

// The four golden-trace scenarios (tests/sim/trace_golden_test.cpp): the
// thread-count sweep certifies determinism exactly where the digest locks
// watch for drift.
ScenarioConfig golden(traffic::IntersectionKind kind, double vpm,
                      std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.intersection.kind = kind;
  cfg.vehicles_per_minute = vpm;
  cfg.duration_ms = 120'000;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::pair<std::string, ScenarioConfig>> golden_scenarios() {
  std::vector<std::pair<std::string, ScenarioConfig>> out;
  out.emplace_back("BenignCross4",
                   golden(traffic::IntersectionKind::kCross4, 80, 1));
  out.emplace_back("DenseCross4",
                   golden(traffic::IntersectionKind::kCross4, 120, 7));
  {
    ScenarioConfig cfg = golden(traffic::IntersectionKind::kRoundabout3, 60, 3);
    cfg.legacy_fraction = 0.25;
    out.emplace_back("MixedTrafficRoundabout", cfg);
  }
  {
    ScenarioConfig cfg = golden(traffic::IntersectionKind::kCross4, 80, 5);
    cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
    out.emplace_back("DeviationAttackCross4", cfg);
  }
  return out;
}

// %a renders doubles exactly (hex float): equality means bit-identical.
std::string fingerprint(const RunSummary& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "spawned=%d exited=%d thr=%a cross=%a active=%d gaps=%d "
      "legacy=%d/%d inc=%d glob=%d alerts=%d false=%d degraded=%d blocks=%d "
      "sent=%llu delivered=%llu dropped=%llu oor=%llu bytes=%llu",
      s.metrics.vehicles_spawned, s.metrics.vehicles_exited, s.throughput_vpm,
      s.mean_crossing_ms, s.active_at_end, s.min_ground_truth_gap_violations,
      s.legacy_spawned, s.legacy_exited, s.metrics.incident_reports,
      s.metrics.global_reports, s.metrics.evacuation_alerts,
      s.metrics.false_alarm_evacuations, s.metrics.degraded_entries,
      s.metrics.blocks_published,
      static_cast<unsigned long long>(s.net_stats.packets_sent),
      static_cast<unsigned long long>(s.net_stats.packets_delivered),
      static_cast<unsigned long long>(s.net_stats.packets_dropped),
      static_cast<unsigned long long>(s.net_stats.packets_out_of_range),
      static_cast<unsigned long long>(s.net_stats.bytes_sent));
  return buf;
}

TEST(WorldParallel, StepThreadsByteIdenticalAcross1248) {
  for (const auto& [name, cfg] : golden_scenarios()) {
    SCOPED_TRACE(name);
    std::vector<std::unique_ptr<World>> worlds;
    const int thread_counts[] = {1, 2, 4, 8};
    for (const int threads : thread_counts) {
      ScenarioConfig c = cfg;
      c.step_threads = threads;
      worlds.push_back(std::make_unique<World>(c));
    }
    // Lock-step so a divergence fails at the earliest tick, not at the end.
    for (Tick t = 5'000; t <= cfg.duration_ms; t += 5'000) {
      worlds[0]->run_until(t);
      const std::string reference = fingerprint(worlds[0]->summary());
      for (std::size_t i = 1; i < worlds.size(); ++i) {
        worlds[i]->run_until(t);
        ASSERT_EQ(fingerprint(worlds[i]->summary()), reference)
            << name << " diverged at t=" << t
            << " step_threads=" << thread_counts[i];
      }
    }
    // The summary digest additionally folds the telemetry snapshot (verify-
    // cache hit/miss gauges included), pinning the batched prefetch's
    // stats-neutrality on top of the simulation outcome.
    const std::string digest =
        checkpoint::run_summary_digest(worlds[0]->run());
    for (std::size_t i = 1; i < worlds.size(); ++i) {
      EXPECT_EQ(checkpoint::run_summary_digest(worlds[i]->run()), digest)
          << name << " final digest diverged at step_threads="
          << thread_counts[i];
    }
  }
}

// RSA signatures make the batched verification wave real work: with
// step_threads > 1 the world collects every pending block signature due in
// the step, verifies the unseen ones through the pool, and seeds the batch
// table — receivers must then observe exactly the hits and misses the
// serial path would have produced.
TEST(WorldParallel, BatchedRsaVerificationByteIdentical) {
  ScenarioConfig cfg = golden(traffic::IntersectionKind::kCross4, 80, 5);
  cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
  cfg.signer = SignerKind::kRsa1024;
  cfg.duration_ms = 60'000;

  ScenarioConfig threaded = cfg;
  threaded.step_threads = 4;

  const RunSummary serial = World(cfg).run();
  const RunSummary batched = World(threaded).run();
  ASSERT_GT(serial.metrics.blocks_published, 0);  // the wave actually ran
  EXPECT_EQ(fingerprint(batched), fingerprint(serial));
  EXPECT_EQ(checkpoint::run_summary_digest(batched),
            checkpoint::run_summary_digest(serial));
}

// Checkpointing is step-boundary state only, so the SoA columns and the
// worker pool must be invisible to it: a threaded run saved mid-flight
// restores onto fresh columns (rows re-created in ascending id order) and
// continues bit-exactly.
TEST(WorldParallel, CheckpointRoundTripBitExactUnderThreads) {
  ScenarioConfig cfg = golden(traffic::IntersectionKind::kCross4, 120, 7);
  cfg.step_threads = 4;

  World uninterrupted(cfg);
  uninterrupted.run_until(cfg.duration_ms);

  World original(cfg);
  original.run_until(60'000);
  const Bytes blob = original.checkpoint_save();
  std::string error;
  std::unique_ptr<World> resumed = World::checkpoint_restore(blob, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->checkpoint_save(), blob);  // save/restore/save identity

  resumed->run_until(cfg.duration_ms);
  EXPECT_EQ(checkpoint::run_summary_digest(resumed->summary()),
            checkpoint::run_summary_digest(uninterrupted.summary()));
}

}  // namespace
}  // namespace nwade::sim
