// Crash-resumable campaigns: run_campaign_resumable must produce results
// byte-identical (campaign_results_json) to run_campaign — from a cold
// journal, from a partial journal (the crash-resume path), from a journal
// with a torn tail (the record a crash cut mid-write), and from a journal
// recorded for a different campaign (which must be ignored wholesale).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/campaign.h"

namespace nwade::sim {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.attacks = {"benign", "V1"};
  cfg.densities_vpm = {60};
  cfg.rounds = 2;
  cfg.base_seed = 5;
  cfg.duration_ms = 20'000;
  return cfg;
}

std::string temp_journal(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const Bytes& blob) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
}

class CampaignResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(journal_.c_str()); }
  std::string journal_ = temp_journal("nwade_campaign_resume_test.journal");
};

TEST_F(CampaignResumeTest, ColdJournalMatchesPlainRunByteForByte) {
  const CampaignConfig cfg = small_campaign();
  const std::string plain = campaign_results_json(cfg, run_campaign(cfg));

  std::remove(journal_.c_str());
  const std::string resumable =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(resumable, plain);
}

TEST_F(CampaignResumeTest, ResumeFromCompleteJournalMatchesWithoutRerunning) {
  const CampaignConfig cfg = small_campaign();
  std::remove(journal_.c_str());
  const std::string first =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  // Second run replays the journal alone — every cell is already recorded,
  // so this is near-instant and must reproduce the same bytes.
  const std::string second =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(second, first);
}

TEST_F(CampaignResumeTest, TornTailIsDiscardedAndRerunByteIdentical) {
  const CampaignConfig cfg = small_campaign();
  std::remove(journal_.c_str());
  const std::string expected =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  const Bytes complete = read_file(journal_);
  ASSERT_FALSE(complete.empty());

  // Chop the journal mid-record at several depths — exactly what SIGKILL
  // during an append leaves behind. Every truncation must resume to the same
  // result bytes: valid prefix records splice in, the torn tail re-runs.
  for (const double fraction : {0.95, 0.6, 0.3}) {
    Bytes torn(complete.begin(),
               complete.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<double>(complete.size()) *
                                      fraction));
    write_file(journal_, torn);
    const std::string resumed =
        campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
    EXPECT_EQ(resumed, expected) << "truncated at " << fraction;
  }
}

TEST_F(CampaignResumeTest, CorruptRecordByteIsDiscardedNotTrusted) {
  const CampaignConfig cfg = small_campaign();
  std::remove(journal_.c_str());
  const std::string expected =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  Bytes blob = read_file(journal_);
  ASSERT_GT(blob.size(), 200u);

  // Flip one byte inside the first record's payload (past the two header
  // strings): its CRC must fail, dropping it and everything after.
  blob[150] ^= 0x01;
  write_file(journal_, blob);
  const std::string resumed =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(resumed, expected);
}

TEST_F(CampaignResumeTest, ForeignJournalIsIgnoredWholesale) {
  const CampaignConfig cfg = small_campaign();
  CampaignConfig other = cfg;
  other.base_seed = 99;  // different fingerprint, overlapping cell indices

  std::remove(journal_.c_str());
  run_campaign_resumable(other, journal_);

  // Resuming cfg against other's journal must not splice other's summaries
  // in; it reruns everything and rewrites the journal under cfg's identity.
  const std::string expected = campaign_results_json(cfg, run_campaign(cfg));
  const std::string resumed =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(resumed, expected);

  // And the journal now belongs to cfg: an immediate rerun replays it.
  const std::string replayed =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(replayed, expected);
}

TEST_F(CampaignResumeTest, ThreadCountDoesNotChangeResumedBytes) {
  CampaignConfig cfg = small_campaign();
  std::remove(journal_.c_str());
  cfg.threads = 1;
  const std::string single =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));

  std::remove(journal_.c_str());
  cfg.threads = 4;
  const std::string pooled =
      campaign_results_json(cfg, run_campaign_resumable(cfg, journal_));
  EXPECT_EQ(pooled, single);
}

}  // namespace
}  // namespace nwade::sim
