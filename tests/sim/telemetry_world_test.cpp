// Whole-stack telemetry integration (ctest label: obs): a traced World must
// (a) record the documented span taxonomy across every layer, (b) leave the
// simulation's decisions untouched, and (c) export byte-identical metrics
// snapshots and wall-stripped traces for identical seeded runs — including
// through the campaign engine at any pool size.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/support.h"
#include "sim/campaign.h"
#include "sim/world.h"

namespace nwade::sim {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed, bool trace) {
  ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 60;
  cfg.duration_ms = 60'000;
  cfg.seed = seed;
  cfg.trace_enabled = trace;
  return cfg;
}

ScenarioConfig attack_scenario(std::uint64_t seed, bool trace) {
  ScenarioConfig cfg = small_scenario(seed, trace);
  cfg.attack = protocol::attack_setting_by_name("V1");
  cfg.attack_time = 30'000;
  // Blind the IM's own sensors so incident reports take the distributed
  // verification path (Alg. 2/3) — that is the span chain under test.
  cfg.nwade.im_perception_radius_m = 0;
  return cfg;
}

bool has_event(const std::vector<util::trace::Event>& events, const char* cat,
               const char* name) {
  for (const util::trace::Event& e : events) {
    if (std::string(e.cat) == cat && std::string(e.name) == name) return true;
  }
  return false;
}

TEST(TelemetryWorld, UntracedWorldRecordsNoEventsButStillCounts) {
  World world(small_scenario(1, /*trace=*/false));
  const RunSummary s = world.run();
  EXPECT_TRUE(world.take_trace().empty());
  // The registry is always on: its counters replace the old hand-rolled
  // accounting, so they must agree with the rebuilt NetworkStats view.
  const auto& counters = s.metrics_snapshot.counters;
  EXPECT_EQ(counters.at("net.packets.sent"),
            static_cast<std::int64_t>(s.net_stats.packets_sent));
  EXPECT_EQ(counters.at("net.bytes.sent"),
            static_cast<std::int64_t>(s.net_stats.bytes_sent));
  EXPECT_EQ(counters.at("aim.plans_scheduled") > 0, true);
  EXPECT_EQ(counters.at("sim.steps"),
            static_cast<std::int64_t>(60'000 / 100));
  // Protocol silo folded as gauges.
  EXPECT_EQ(s.metrics_snapshot.gauges.at("protocol.vehicles_exited"),
            s.metrics.vehicles_exited);
}

TEST(TelemetryWorld, TracedRunRecordsTheSpanTaxonomy) {
  World world(attack_scenario(5, /*trace=*/true));
  world.run();
  const std::vector<util::trace::Event> events = world.take_trace();
  ASSERT_FALSE(events.empty());
  // sim: per-phase profiling spans.
  EXPECT_TRUE(has_event(events, "sim", "phase.events"));
  EXPECT_TRUE(has_event(events, "sim", "phase.physics"));
  EXPECT_TRUE(has_event(events, "sim", "phase.watch"));
  EXPECT_TRUE(has_event(events, "sim", "phase.gap_audit"));
  // aim/chain: scheduler batch windows, block packaging + verification.
  EXPECT_TRUE(has_event(events, "aim", "process_window"));
  EXPECT_TRUE(has_event(events, "chain", "package"));
  EXPECT_TRUE(has_event(events, "chain", "verify_block"));
  // nwade: the detection timeline of the deviation attack.
  EXPECT_TRUE(has_event(events, "nwade", "incident_report"));
  EXPECT_TRUE(has_event(events, "nwade", "incident_report_received"));
  EXPECT_TRUE(has_event(events, "nwade", "verify_round_start"));
  EXPECT_TRUE(has_event(events, "nwade", "verify_round"));
}

TEST(TelemetryWorld, TracingDoesNotPerturbTheRun) {
  World off(attack_scenario(7, false));
  World on(attack_scenario(7, true));
  const RunSummary a = off.run();
  const RunSummary b = on.run();
  // Identical decisions and identical metrics, to the byte.
  EXPECT_EQ(a.metrics_snapshot.json(), b.metrics_snapshot.json());
  EXPECT_EQ(a.net_stats.packets_sent, b.net_stats.packets_sent);
  EXPECT_EQ(a.metrics.vehicles_exited, b.metrics.vehicles_exited);
  EXPECT_EQ(a.metrics.deviation_confirmed, b.metrics.deviation_confirmed);
}

TEST(TelemetryWorld, SeededRunsExportByteIdenticalTelemetry) {
  const auto run = [] {
    World world(attack_scenario(9, true));
    world.run();
    const std::vector<util::trace::Event> events = world.take_trace();
    // Wall-clock stripped: the documented deterministic comparison form.
    return util::trace::chrome_trace_json({events}, {"run"},
                                          /*include_wall=*/false);
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
  EXPECT_TRUE(bench::json_well_formed(first));
}

TEST(TelemetryWorld, CampaignExportsAreWellFormedAndPoolSizeIndependent) {
  CampaignConfig cfg;
  cfg.kinds = {traffic::IntersectionKind::kCross4};
  cfg.attacks = {"benign", "V1"};
  cfg.densities_vpm = {60.0};
  cfg.rounds = 1;
  cfg.duration_ms = 30'000;
  cfg.trace = true;

  cfg.threads = 1;
  const std::vector<CellResult> inline_results = run_campaign(cfg);
  cfg.threads = 3;
  const std::vector<CellResult> pooled_results = run_campaign(cfg);

  // Per-cell metrics block rides in the nwade-campaign-v1 rows.
  const std::string results_json = campaign_results_json(cfg, inline_results);
  EXPECT_NE(results_json.find("\"metrics\": {"), std::string::npos);
  EXPECT_EQ(results_json, campaign_results_json(cfg, pooled_results));

  const std::string metrics_json = campaign_metrics_json(cfg, inline_results);
  EXPECT_TRUE(bench::json_well_formed(metrics_json));
  EXPECT_NE(metrics_json.find("nwade-metrics-v1"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"merged\""), std::string::npos);
  EXPECT_EQ(metrics_json, campaign_metrics_json(cfg, pooled_results));

  // Chrome export: loadable structure, one labeled pid per cell, and (wall
  // stripped) byte-identical across pool sizes.
  const std::string trace_json =
      campaign_trace_json(inline_results, /*include_wall=*/false);
  EXPECT_TRUE(bench::json_well_formed(trace_json));
  EXPECT_NE(trace_json.find("process_name"), std::string::npos);
  EXPECT_NE(trace_json.find("4-way cross/V1/vpm60/r0"), std::string::npos);
  EXPECT_EQ(trace_json, campaign_trace_json(pooled_results, false));

  const std::string jsonl = campaign_trace_jsonl(inline_results, false);
  EXPECT_EQ(jsonl, campaign_trace_jsonl(pooled_results, false));
}

}  // namespace
}  // namespace nwade::sim
