// Golden-trace regression lock: a deterministic World run must produce a
// bit-for-bit identical trace across refactors. The digests below were
// recorded from the pre-optimization (linear-scan scheduler, uncached
// crypto) tree; the indexed reservation tables, block-level caches, and the
// worker pool must all reproduce them exactly. Wall-clock metrics
// (im_package_us / vehicle_verify_us) are excluded — everything else that a
// run observes is folded into one SHA-256.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "crypto/sha256.h"
#include "sim/world.h"
#include "util/bytes.h"

namespace nwade::sim {
namespace {

void fold_optional_tick(ByteWriter& w, const std::optional<Tick>& t) {
  w.u8(t.has_value() ? 1 : 0);
  w.i64(t.value_or(0));
}

void fold_kind_map(ByteWriter& w,
                   const std::unordered_map<std::string, std::uint64_t>& m) {
  std::map<std::string, std::uint64_t> sorted(m.begin(), m.end());
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& [kind, count] : sorted) {
    w.str(kind);
    w.u64(count);
  }
}

/// Runs the scenario to the midpoint, snapshots every live vehicle's view of
/// the chain (per-block seq + Merkle root + exact plan bytes), finishes the
/// run, folds in the full summary, and returns the hex digest of it all.
std::string trace_digest(ScenarioConfig cfg) {
  World world(std::move(cfg));
  ByteWriter w;

  world.run_until(world.now() + 60'000);
  for (const VehicleId id : world.vehicle_ids()) {
    const protocol::VehicleNode* v =
        const_cast<World&>(world).vehicle(id);
    if (v == nullptr) continue;
    w.u64(id.value);
    const auto& store = v->store();
    w.u64(store.size());
    for (const auto& block : store.blocks()) {
      w.u64(block.seq);
      w.i64(block.timestamp);
      w.bytes(block.merkle_root);
      for (const auto& plan : block.plans()) w.bytes(plan.serialize());
    }
  }

  const RunSummary s = world.run();

  const protocol::Metrics& m = s.metrics;
  fold_optional_tick(w, m.violation_start);
  fold_optional_tick(w, m.first_true_incident);
  fold_optional_tick(w, m.deviation_confirmed);
  fold_optional_tick(w, m.false_incident_injected);
  fold_optional_tick(w, m.false_incident_dismissed);
  fold_optional_tick(w, m.false_global_injected);
  fold_optional_tick(w, m.false_global_detected);
  fold_optional_tick(w, m.im_conflict_injected);
  fold_optional_tick(w, m.im_conflict_detected);
  fold_optional_tick(w, m.sham_alert_detected);
  for (const int counter :
       {m.vehicles_spawned, m.vehicles_exited, m.incident_reports, m.global_reports,
        m.verify_rounds, m.alarm_dismissals, m.evacuation_alerts,
        m.benign_self_evacuations, m.false_alarm_evacuations,
        m.malicious_reports_recorded, m.blocks_published,
        m.block_verification_failures, m.plan_request_retries, m.gap_block_requests,
        m.degraded_entries, m.degraded_crossings, m.im_crashes, m.im_restarts,
        m.im_courtesy_gaps}) {
    w.i64(counter);
  }

  const net::NetworkStats& n = s.net_stats;
  w.u64(n.packets_sent);
  w.u64(n.packets_delivered);
  w.u64(n.packets_dropped);
  w.u64(n.packets_out_of_range);
  w.u64(n.packets_duplicated);
  w.u64(n.packets_lost_outage);
  w.u64(n.bytes_sent);
  fold_kind_map(w, n.packets_by_kind);
  fold_kind_map(w, n.bytes_by_kind);
  fold_kind_map(w, n.dropped_by_kind);

  w.f64(s.throughput_vpm);
  w.f64(s.mean_crossing_ms);
  w.i64(s.active_at_end);
  w.i64(s.min_ground_truth_gap_violations);
  w.i64(s.legacy_spawned);
  w.i64(s.legacy_exited);

  return crypto::digest_hex(crypto::sha256(w.data()));
}

ScenarioConfig scenario(traffic::IntersectionKind kind, double vpm,
                        std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.intersection.kind = kind;
  cfg.vehicles_per_minute = vpm;
  cfg.duration_ms = 120'000;
  cfg.seed = seed;
  return cfg;
}

TEST(TraceGolden, BenignCross4) {
  EXPECT_EQ(trace_digest(scenario(traffic::IntersectionKind::kCross4, 80, 1)),
            "0e83bbd0a51d8df2b9ea6241bfb16e70f3e62c285ccd24da7b3aa131a39b0e2b");
}

TEST(TraceGolden, DenseCross4) {
  EXPECT_EQ(trace_digest(scenario(traffic::IntersectionKind::kCross4, 120, 7)),
            "85792ecf2b608ab59daf55da1128614dbdd3daad0fa8dd3488f5432c413ee89c");
}

TEST(TraceGolden, MixedTrafficRoundabout) {
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kRoundabout3, 60, 3);
  cfg.legacy_fraction = 0.25;
  EXPECT_EQ(trace_digest(std::move(cfg)), "f14c0b8ae02954f23ab4190f1b0e782548ca72a633e9997207db0e889e227f89");
}

TEST(TraceGolden, DeviationAttackCross4) {
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 80, 5);
  cfg.attack = protocol::AttackSetting{"deviation", 1, false, 0, 0};
  EXPECT_EQ(trace_digest(std::move(cfg)), "7aee66a07164ede3f6bf1b783fc7559c61fb310851d6166934911d7b4ea3587c");
}

TEST(TraceGolden, TelemetryTracingIsPurelyObservational) {
  // The observability layer's contract: enabling the event tracer (and the
  // always-on registry counters behind it) changes no decision anywhere, so
  // the golden digest is the untraced one, byte for byte.
  ScenarioConfig cfg = scenario(traffic::IntersectionKind::kCross4, 80, 1);
  cfg.trace_enabled = true;
  EXPECT_EQ(trace_digest(std::move(cfg)),
            "0e83bbd0a51d8df2b9ea6241bfb16e70f3e62c285ccd24da7b3aa131a39b0e2b");
}

}  // namespace
}  // namespace nwade::sim
