// Campaign-engine contract tests. Built as a chaos test so the TSan build
// (SANITIZE=thread, ctest -L chaos) executes the real multi-threaded fan-out
// — the determinism assertions here are also the data-race payload.
#include "sim/campaign.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/verify_cache.h"

namespace nwade::sim {
namespace {

CampaignConfig small_matrix() {
  CampaignConfig cfg;
  cfg.kinds = {traffic::IntersectionKind::kCross4,
               traffic::IntersectionKind::kRoundabout3};
  cfg.attacks = {"benign", "V1"};
  cfg.densities_vpm = {60.0, 90.0};
  cfg.rounds = 2;
  cfg.base_seed = 11;
  cfg.duration_ms = 10'000;
  return cfg;
}

TEST(Campaign, ExpansionOrderAndSeeds) {
  CampaignConfig cfg = small_matrix();
  const auto cells = expand_cells(cfg);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);

  // kinds (outer) -> attacks -> densities -> rounds (inner); seeds are
  // base_seed + round so rounds differ only by seed.
  EXPECT_EQ(cells[0].kind, traffic::IntersectionKind::kCross4);
  EXPECT_EQ(cells[0].attack, "benign");
  EXPECT_EQ(cells[0].vpm, 60.0);
  EXPECT_EQ(cells[0].round, 0);
  EXPECT_EQ(cells[0].seed, 11u);
  EXPECT_EQ(cells[1].round, 1);
  EXPECT_EQ(cells[1].seed, 12u);
  EXPECT_EQ(cells[2].vpm, 90.0);
  EXPECT_EQ(cells[4].attack, "V1");
  EXPECT_EQ(cells[8].kind, traffic::IntersectionKind::kRoundabout3);

  // The cell's axes land on the scenario; the base carries everything else.
  cfg.base.legacy_fraction = 0.25;
  const ScenarioConfig sc = cell_scenario(cfg, cells[5]);
  EXPECT_EQ(sc.intersection.kind, cells[5].kind);
  EXPECT_EQ(sc.vehicles_per_minute, cells[5].vpm);
  EXPECT_EQ(sc.seed, cells[5].seed);
  EXPECT_EQ(sc.duration_ms, cfg.duration_ms);
  EXPECT_EQ(sc.attack.name, "V1");
  EXPECT_EQ(sc.legacy_fraction, 0.25);
}

TEST(Campaign, PoolSizeNeverChangesAResultByte) {
  CampaignConfig cfg = small_matrix();
  cfg.threads = 1;
  const auto reference_results = run_campaign(cfg);
  ASSERT_EQ(reference_results.size(), expand_cells(cfg).size());
  const std::string reference = campaign_results_json(cfg, reference_results);
  EXPECT_FALSE(reference.empty());

  for (const int threads : {2, 4, 8}) {
    cfg.threads = threads;
    const std::string got = campaign_results_json(cfg, run_campaign(cfg));
    EXPECT_EQ(got, reference)
        << "pool size " << threads << " changed the aggregated results";
  }
}

TEST(Campaign, AggregateGroupsRoundsPerMatrixPoint) {
  CampaignConfig cfg = small_matrix();
  cfg.threads = 4;
  const auto results = run_campaign(cfg);
  const auto aggs = aggregate(cfg, results);
  ASSERT_EQ(aggs.size(), results.size() / static_cast<std::size_t>(cfg.rounds));
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    EXPECT_EQ(aggs[i].rounds, cfg.rounds);
    // Aggregate i covers results [i*rounds, (i+1)*rounds): same coordinates.
    const auto& first = results[i * static_cast<std::size_t>(cfg.rounds)];
    EXPECT_EQ(aggs[i].kind, first.cell.kind);
    EXPECT_EQ(aggs[i].attack, first.cell.attack);
    EXPECT_EQ(aggs[i].vpm, first.cell.vpm);
  }
}

// Worlds inject a per-run SigVerifyCache into their vehicles' verifiers, so
// an RSA campaign cell must leave the process-wide singleton cache untouched
// — that isolation is what lets concurrent cells share nothing.
TEST(Campaign, RsaRunsUseThePerWorldCacheNotTheSingleton) {
  auto& singleton = crypto::SigVerifyCache::instance();
  singleton.reset();

  ScenarioConfig sc;
  sc.intersection.kind = traffic::IntersectionKind::kCross4;
  sc.vehicles_per_minute = 60;
  sc.duration_ms = 10'000;
  sc.seed = 3;
  sc.signer = SignerKind::kRsa1024;
  const RunSummary summary = World(sc).run();
  EXPECT_GT(summary.metrics.blocks_published, 0);

  const auto stats = singleton.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(singleton.size(), 0u);
}

}  // namespace
}  // namespace nwade::sim
