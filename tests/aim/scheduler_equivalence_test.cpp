// Proves the indexed reservation tables behavior-preserving: the same
// operation stream through a linear-reference scheduler
// (SchedulerConfig::linear_reference_scan) and the default indexed one must
// yield identical TravelPlans at every step — not just at the end, so the
// first divergence points at the exact operation that broke equivalence.
#include <gtest/gtest.h>

#include "aim/scheduler.h"
#include "traffic/arrivals.h"
#include "util/rng.h"

namespace nwade::aim {
namespace {

using traffic::ArrivalGenerator;
using traffic::Intersection;
using traffic::IntersectionConfig;
using traffic::IntersectionKind;

Intersection make_ix(IntersectionKind kind) {
  IntersectionConfig cfg;
  cfg.kind = kind;
  return Intersection::build(cfg);
}

/// Drives both schedulers through a dense arrival stream interleaved with
/// the release/reschedule operations the IM performs, asserting lock-step
/// equality.
void run_equivalence(IntersectionKind kind, double vpm, Duration duration_ms,
                     std::uint64_t seed) {
  const Intersection ix = make_ix(kind);
  SchedulerConfig linear_cfg;
  linear_cfg.linear_reference_scan = true;
  ReservationScheduler linear(ix, linear_cfg);
  ReservationScheduler indexed(ix);  // default: indexed tables

  ArrivalGenerator gen(ix, vpm, Rng(seed));
  const auto arrivals = gen.generate(duration_ms);
  ASSERT_FALSE(arrivals.empty());

  std::vector<std::pair<VehicleId, int>> scheduled;  // (vehicle, route)
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& a = arrivals[i];
    const VehicleId id{next_id++};
    const TravelPlan pl =
        linear.schedule(id, a.route_id, a.traits, a.time, a.initial_speed_mps);
    const TravelPlan pi =
        indexed.schedule(id, a.route_id, a.traits, a.time, a.initial_speed_mps);
    ASSERT_EQ(pl, pi) << "schedule() diverged at arrival " << i;
    scheduled.emplace_back(id, a.route_id);

    // Interleave the IM's maintenance ops so the equivalence also covers
    // erase + compaction paths, not just inserts.
    if (i % 17 == 16) {
      const auto& victim = scheduled[i / 2];
      linear.release_vehicle(victim.first);
      indexed.release_vehicle(victim.first);
    }
    if (i % 29 == 28) {
      linear.release_before(a.time - 60'000);
      indexed.release_before(a.time - 60'000);
    }
    if (i % 23 == 22) {
      const auto& v = scheduled[i / 3];
      const Tick now = a.time + 500;
      const TravelPlan rl =
          linear.reschedule(v.first, v.second, arrivals[i / 3].traits, now, 5.0);
      const TravelPlan ri =
          indexed.reschedule(v.first, v.second, arrivals[i / 3].traits, now, 5.0);
      ASSERT_EQ(rl, ri) << "reschedule() diverged at arrival " << i;
    }
    ASSERT_EQ(linear.reservation_count(), indexed.reservation_count())
        << "reservation tables diverged at arrival " << i;
  }

  // Recovery replans every survivor from scratch against rebuilt tables.
  std::vector<ActiveVehicle> active;
  for (std::size_t i = 0; i < std::min<std::size_t>(scheduled.size(), 12); ++i) {
    ActiveVehicle v;
    v.id = scheduled[i].first;
    v.route_id = scheduled[i].second;
    v.s = 3.0 * static_cast<double>(i);
    v.v_mps = 6.0;
    active.push_back(v);
  }
  const Tick t_rec = arrivals.back().time + 10'000;
  const auto rec_l = linear.plan_recovery(active, t_rec);
  const auto rec_i = indexed.plan_recovery(active, t_rec);
  ASSERT_EQ(rec_l.size(), rec_i.size());
  for (std::size_t i = 0; i < rec_l.size(); ++i) {
    ASSERT_EQ(rec_l[i], rec_i[i]) << "plan_recovery() diverged at plan " << i;
  }
}

TEST(SchedulerEquivalence, DenseCross4) {
  run_equivalence(IntersectionKind::kCross4, 120, 5 * 60'000, 11);
}

TEST(SchedulerEquivalence, DenseRoundabout3) {
  run_equivalence(IntersectionKind::kRoundabout3, 120, 3 * 60'000, 22);
}

TEST(SchedulerEquivalence, Irregular5) {
  run_equivalence(IntersectionKind::kIrregular5, 90, 3 * 60'000, 33);
}

TEST(SchedulerEquivalence, Ddi4) {
  run_equivalence(IntersectionKind::kDdi4, 100, 3 * 60'000, 44);
}

}  // namespace
}  // namespace nwade::aim
