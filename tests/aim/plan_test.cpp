// TravelPlan: kinematic queries, serialization, conflict detection.
#include "aim/plan.h"

#include <gtest/gtest.h>

namespace nwade::aim {
namespace {

using traffic::Intersection;
using traffic::IntersectionConfig;
using traffic::IntersectionKind;

TravelPlan simple_plan(VehicleId id, Tick start, double v, double s0 = 0) {
  TravelPlan p;
  p.vehicle = id;
  p.segments = {PlanSegment{start, s0, v}};
  p.issued_at = start;
  return p;
}

TEST(TravelPlan, PositionBeforeStartIsInitial) {
  const TravelPlan p = simple_plan(VehicleId{1}, 1000, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(p.s_at(0), 5.0);
  EXPECT_DOUBLE_EQ(p.s_at(1000), 5.0);
  EXPECT_DOUBLE_EQ(p.v_at(0), 0.0);
}

TEST(TravelPlan, ConstantSpeedAdvance) {
  const TravelPlan p = simple_plan(VehicleId{1}, 0, 10.0);
  EXPECT_DOUBLE_EQ(p.s_at(1000), 10.0);
  EXPECT_DOUBLE_EQ(p.s_at(2500), 25.0);
  EXPECT_DOUBLE_EQ(p.v_at(500), 10.0);
}

TEST(TravelPlan, MultiSegmentProfile) {
  TravelPlan p;
  p.vehicle = VehicleId{1};
  // Wait 2 s at s=0, cruise at 5 m/s for 10 s to s=50, then 20 m/s.
  p.segments = {PlanSegment{0, 0, 0}, PlanSegment{2000, 0, 5},
                PlanSegment{12000, 50, 20}};
  EXPECT_DOUBLE_EQ(p.s_at(1000), 0.0);
  EXPECT_DOUBLE_EQ(p.s_at(4000), 10.0);
  EXPECT_DOUBLE_EQ(p.s_at(12000), 50.0);
  EXPECT_DOUBLE_EQ(p.s_at(13000), 70.0);
  EXPECT_DOUBLE_EQ(p.v_at(1000), 0.0);
  EXPECT_DOUBLE_EQ(p.v_at(5000), 5.0);
  EXPECT_DOUBLE_EQ(p.v_at(20000), 20.0);
}

TEST(TravelPlan, TimeAtInvertsPosition) {
  TravelPlan p;
  p.segments = {PlanSegment{0, 0, 0}, PlanSegment{2000, 0, 5},
                PlanSegment{12000, 50, 20}};
  EXPECT_EQ(p.time_at(0).value(), 0);
  EXPECT_EQ(p.time_at(10).value(), 4000);
  EXPECT_EQ(p.time_at(50).value(), 12000);
  EXPECT_EQ(p.time_at(70).value(), 13000);
  // Round trip: s_at(time_at(s)) == s for positions on the profile.
  for (double s : {1.0, 25.0, 49.0, 100.0}) {
    EXPECT_NEAR(p.s_at(p.time_at(s).value()), s, 0.05) << "s=" << s;
  }
}

TEST(TravelPlan, TimeAtUnreachableReturnsNullopt) {
  TravelPlan p;
  // Cruise to s=30 then stop forever.
  p.segments = {PlanSegment{0, 0, 10}, PlanSegment{3000, 30, 0}};
  EXPECT_TRUE(p.time_at(29).has_value());
  EXPECT_FALSE(p.time_at(31).has_value());
}

TEST(TravelPlan, SerializationRoundTrip) {
  TravelPlan p;
  p.vehicle = VehicleId{42};
  p.route_id = 7;
  p.traits = {3, 14, 2, 4.8};
  p.status_at_issue = {{12.5, -90.25}, 17.0, 1.57};
  p.segments = {PlanSegment{100, 0, 0}, PlanSegment{2100, 0, 12.5}};
  p.issued_at = 100;
  p.core_entry = 20100;
  p.core_exit = 24100;
  p.evacuation = true;

  const Bytes bytes = p.serialize();
  const auto back = TravelPlan::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
  EXPECT_TRUE(back->evacuation);
  EXPECT_DOUBLE_EQ(back->status_at_issue.position.x, 12.5);
}

TEST(TravelPlan, DeserializeRejectsCorruptData) {
  TravelPlan p = simple_plan(VehicleId{1}, 0, 10.0);
  Bytes bytes = p.serialize();
  bytes.pop_back();
  EXPECT_FALSE(TravelPlan::deserialize(bytes).has_value());
  EXPECT_FALSE(TravelPlan::deserialize(Bytes{}).has_value());
  Bytes garbage(10, 0xff);
  EXPECT_FALSE(TravelPlan::deserialize(garbage).has_value());
}

TEST(TravelPlan, SerializationIsCanonical) {
  const TravelPlan p = simple_plan(VehicleId{9}, 50, 8.0);
  EXPECT_EQ(p.serialize(), p.serialize());
}

class PlanConflictTest : public ::testing::Test {
 protected:
  static Intersection make() {
    IntersectionConfig cfg;
    cfg.kind = IntersectionKind::kCross4;
    return Intersection::build(cfg);
  }
  Intersection ix_ = make();

  /// Finds the route ids of a known conflicting pair (left from leg 0,
  /// straight from opposing leg 2).
  std::pair<int, int> conflicting_routes() const {
    int left0 = -1, straight2 = -1;
    for (const auto& r : ix_.routes()) {
      if (r.entry_leg == 0 && r.turn == traffic::Turn::kLeft) left0 = r.id;
      if (r.entry_leg == 2 && r.turn == traffic::Turn::kStraight) straight2 = r.id;
    }
    return {left0, straight2};
  }

  /// A plan crossing the given route with core entry at `core_entry`.
  TravelPlan crossing_plan(VehicleId id, int route_id, Tick core_entry) const {
    const auto& route = ix_.route(route_id);
    TravelPlan p;
    p.vehicle = id;
    p.route_id = route_id;
    const double v = 15.0;
    const Tick t0 = core_entry - seconds_to_ticks(route.core_begin / v);
    p.segments = {PlanSegment{t0, 0, v}};
    p.issued_at = t0;
    p.core_entry = core_entry;
    p.core_exit = core_entry + seconds_to_ticks((route.core_end - route.core_begin) / v);
    return p;
  }
};

TEST_F(PlanConflictTest, SimultaneousCrossingConflicts) {
  const auto [a, b] = conflicting_routes();
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const TravelPlan pa = crossing_plan(VehicleId{1}, a, 60000);
  const TravelPlan pb = crossing_plan(VehicleId{2}, b, 60000);
  const auto conflicts = find_plan_conflicts(ix_, {&pa, &pb}, 500);
  EXPECT_FALSE(conflicts.empty());
}

TEST_F(PlanConflictTest, WellSeparatedCrossingsDoNotConflict) {
  const auto [a, b] = conflicting_routes();
  const TravelPlan pa = crossing_plan(VehicleId{1}, a, 60000);
  const TravelPlan pb = crossing_plan(VehicleId{2}, b, 120000);
  EXPECT_TRUE(find_plan_conflicts(ix_, {&pa, &pb}, 500).empty());
}

TEST_F(PlanConflictTest, SameRouteTailgatingConflicts) {
  const TravelPlan pa = crossing_plan(VehicleId{1}, 0, 60000);
  const TravelPlan pb = crossing_plan(VehicleId{2}, 0, 60100);  // 100 ms behind
  const auto conflicts = find_plan_conflicts(ix_, {&pa, &pb}, 500);
  ASSERT_FALSE(conflicts.empty());
  EXPECT_EQ(conflicts[0].zone_id, -1);  // headway violation marker
}

TEST_F(PlanConflictTest, SameRouteProperHeadwayOk) {
  const TravelPlan pa = crossing_plan(VehicleId{1}, 0, 60000);
  const TravelPlan pb = crossing_plan(VehicleId{2}, 0, 75000);
  EXPECT_TRUE(find_plan_conflicts(ix_, {&pa, &pb}, 500).empty());
}

TEST_F(PlanConflictTest, NonConflictingRoutesNeverConflict) {
  // Opposite right turns never share a zone.
  int right0 = -1, right2 = -1;
  for (const auto& r : ix_.routes()) {
    if (r.entry_leg == 0 && r.turn == traffic::Turn::kRight) right0 = r.id;
    if (r.entry_leg == 2 && r.turn == traffic::Turn::kRight) right2 = r.id;
  }
  const TravelPlan pa = crossing_plan(VehicleId{1}, right0, 60000);
  const TravelPlan pb = crossing_plan(VehicleId{2}, right2, 60000);
  EXPECT_TRUE(find_plan_conflicts(ix_, {&pa, &pb}, 2000).empty());
}

TEST_F(PlanConflictTest, ExpectedStatusTracksGeometry) {
  const TravelPlan p = crossing_plan(VehicleId{1}, 0, 60000);
  const auto& route = ix_.route(0);
  const auto st = p.expected_status(route, 60000);
  // At core entry the vehicle must be at the core_begin point.
  const geom::Vec2 expected = route.path.point_at(route.core_begin);
  EXPECT_NEAR(st.position.x, expected.x, 0.1);
  EXPECT_NEAR(st.position.y, expected.y, 0.1);
  EXPECT_DOUBLE_EQ(st.speed_mps, 15.0);
}

}  // namespace
}  // namespace nwade::aim
