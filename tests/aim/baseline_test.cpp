// TrafficLightScheduler: phase windows, headway, and plan shape.
#include "aim/baseline.h"

#include <gtest/gtest.h>

namespace nwade::aim {
namespace {

traffic::Intersection make_ix() {
  traffic::IntersectionConfig cfg;
  cfg.kind = traffic::IntersectionKind::kCross4;
  return traffic::Intersection::build(cfg);
}

TEST(TrafficLight, GreenWindowsRotateThroughLegs) {
  const auto ix = make_ix();
  TrafficLightScheduler lights(ix);
  // Leg k is green during [k*slot, k*slot + green).
  EXPECT_TRUE(lights.is_green(0, 0));
  EXPECT_TRUE(lights.is_green(0, 11'999));
  EXPECT_FALSE(lights.is_green(0, 12'000));  // clearance
  EXPECT_FALSE(lights.is_green(1, 14'999));
  EXPECT_TRUE(lights.is_green(1, 15'000));
  // Wraps into the next cycle.
  EXPECT_TRUE(lights.is_green(0, lights.cycle_ms()));
}

TEST(TrafficLight, NegativeTimeIsRed) {
  const auto ix = make_ix();
  TrafficLightScheduler lights(ix);
  EXPECT_FALSE(lights.is_green(0, -1));
}

TEST(TrafficLight, ClearanceSeparatesPhases) {
  const auto ix = make_ix();
  TrafficLightConfig cfg;
  TrafficLightScheduler lights(ix, cfg);
  // During any clearance interval no leg is green.
  const Tick t = cfg.green_ms + cfg.clearance_ms / 2;
  for (int leg = 0; leg < 4; ++leg) EXPECT_FALSE(lights.is_green(leg, t));
}

TEST(TrafficLight, HeadwayBetweenSameLegEntries) {
  const auto ix = make_ix();
  TrafficLightConfig cfg;
  TrafficLightScheduler lights(ix, cfg);
  const TravelPlan a = lights.schedule(VehicleId{1}, 0, {}, 0, 20.0);
  const TravelPlan b = lights.schedule(VehicleId{2}, 0, {}, 0, 20.0);
  EXPECT_GE(b.core_entry - a.core_entry, cfg.service_headway_ms);
}

TEST(TrafficLight, DifferentLegsIndependentUntilPhase) {
  const auto ix = make_ix();
  TrafficLightScheduler lights(ix);
  // Routes from different legs have independent headway clocks.
  const TravelPlan a = lights.schedule(VehicleId{1}, 0, {}, 0, 20.0);
  int other_leg_route = -1;
  for (const auto& r : ix.routes()) {
    if (r.entry_leg == 1) {
      other_leg_route = r.id;
      break;
    }
  }
  const TravelPlan b = lights.schedule(VehicleId{2}, other_leg_route, {}, 0, 20.0);
  EXPECT_TRUE(lights.is_green(0, a.core_entry));
  EXPECT_TRUE(lights.is_green(1, b.core_entry));
}

TEST(TrafficLight, PlanShapeMatchesProfileContract) {
  const auto ix = make_ix();
  TrafficLightScheduler lights(ix);
  const TravelPlan p = lights.schedule(VehicleId{1}, 0, {}, 1000, 20.0);
  EXPECT_EQ(p.issued_at, 1000);
  EXPECT_GT(p.core_entry, 1000);
  EXPECT_GT(p.core_exit, p.core_entry);
  // Position function is monotone non-decreasing.
  double prev = -1;
  for (Tick t = 1000; t < p.core_exit + 10'000; t += 500) {
    const double s = p.s_at(t);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(TrafficLight, CycleScalesWithLegCount) {
  traffic::IntersectionConfig cfg5;
  cfg5.kind = traffic::IntersectionKind::kIrregular5;
  const auto ix5 = traffic::Intersection::build(cfg5);
  TrafficLightConfig tcfg;
  TrafficLightScheduler lights(ix5, tcfg);
  EXPECT_EQ(lights.cycle_ms(), 5 * (tcfg.green_ms + tcfg.clearance_ms));
}

}  // namespace
}  // namespace nwade::aim
