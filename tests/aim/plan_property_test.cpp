// Property-based checks on travel plans and conflict detection: randomized
// profiles, kinematic consistency, and agreement with a brute-force oracle.
#include <gtest/gtest.h>

#include "aim/scheduler.h"
#include "traffic/arrivals.h"

namespace nwade::aim {
namespace {

TravelPlan random_plan(Rng& rng, std::uint64_t vid, int route_id, double route_len) {
  TravelPlan p;
  p.vehicle = VehicleId{vid};
  p.route_id = route_id;
  Tick t = rng.uniform_int(0, 5'000);
  double s = 0;
  const int n = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(2.0, 25.0);
    p.segments.push_back(PlanSegment{t, s, v});
    const Duration dur = rng.uniform_int(2'000, 20'000);
    s += v * ticks_to_seconds(dur);
    t += dur;
    if (s > route_len) break;
  }
  p.issued_at = p.segments.front().start;
  return p;
}

TEST(PlanProperty, PositionIsMonotoneNonDecreasing) {
  Rng rng(101);
  for (int iter = 0; iter < 50; ++iter) {
    const TravelPlan p = random_plan(rng, 1, 0, 500);
    double prev = -1;
    for (Tick t = 0; t < 60'000; t += 250) {
      const double s = p.s_at(t);
      EXPECT_GE(s, prev - 1e-9) << "iter " << iter << " t " << t;
      prev = s;
    }
  }
}

TEST(PlanProperty, TimeAtIsLeftInverseOfPosition) {
  Rng rng(102);
  for (int iter = 0; iter < 50; ++iter) {
    const TravelPlan p = random_plan(rng, 1, 0, 500);
    for (double s : {1.0, 10.0, 50.0, 200.0}) {
      const auto t = p.time_at(s);
      if (!t) continue;  // unreachable: plan ends standing still
      // s_at(time_at(s)) == s within tick rounding of the slowest segment.
      EXPECT_NEAR(p.s_at(*t), s, 0.05) << "iter " << iter << " s " << s;
      // No earlier tick reaches s.
      if (*t > 0) EXPECT_LT(p.s_at(*t - 2), s + 0.05);
    }
  }
}

TEST(PlanProperty, SerializationPreservesKinematics) {
  Rng rng(103);
  for (int iter = 0; iter < 30; ++iter) {
    const TravelPlan p = random_plan(rng, 7, 3, 500);
    const auto q = TravelPlan::deserialize(p.serialize());
    ASSERT_TRUE(q.has_value());
    for (Tick t = 0; t < 40'000; t += 1'000) {
      EXPECT_DOUBLE_EQ(p.s_at(t), q->s_at(t));
      EXPECT_DOUBLE_EQ(p.v_at(t), q->v_at(t));
    }
  }
}

// Brute-force conflict oracle: sample both plans' positions over time and
// flag any instant where both are inside the same zone's windows.
bool oracle_conflict(const traffic::Intersection& ix, const TravelPlan& a,
                     const TravelPlan& b, Duration margin) {
  for (const traffic::ZoneRef& ra : ix.zones_for(a.route_id)) {
    for (const traffic::ZoneRef& rb : ix.zones_for(b.route_id)) {
      if (ra.zone_id != rb.zone_id) continue;
      if (a.route_id == b.route_id) continue;
      for (Tick t = 0; t < 120'000; t += 50) {
        const double sa = a.s_at(t);
        const double sb = b.s_at(static_cast<Tick>(t));
        // Expand each window by the time margin converted through speed; to
        // stay conservative the oracle only checks the unpadded windows and
        // the caller uses margin 0.
        (void)margin;
        if (sa >= ra.begin && sa <= ra.end && sb >= rb.begin && sb <= rb.end) {
          return true;
        }
      }
    }
  }
  return false;
}

TEST(PlanProperty, ConflictFinderAgreesWithOracle) {
  traffic::IntersectionConfig icfg;
  icfg.kind = traffic::IntersectionKind::kCross4;
  const auto ix = traffic::Intersection::build(icfg);
  Rng rng(104);
  int oracle_hits = 0, finder_hits = 0, checked = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const int ra = static_cast<int>(rng.uniform_int(0, 11));
    const int rb = static_cast<int>(rng.uniform_int(0, 11));
    if (ra == rb) continue;
    const TravelPlan a =
        random_plan(rng, 1, ra, ix.route(ra).path.length());
    const TravelPlan b =
        random_plan(rng, 2, rb, ix.route(rb).path.length());
    const bool oracle = oracle_conflict(ix, a, b, 0);
    const bool finder = !find_plan_conflicts(ix, {&a, &b}, 0).empty();
    ++checked;
    oracle_hits += oracle;
    finder_hits += finder;
    // The finder must never miss an oracle-visible co-occupancy.
    EXPECT_TRUE(!oracle || finder) << "iter " << iter << " routes " << ra << "," << rb;
  }
  // The sweep must have exercised both outcomes to mean anything.
  EXPECT_GT(oracle_hits, 2);
  EXPECT_LT(finder_hits, checked);
}

TEST(PlanProperty, PairConflictViaOccupanciesMatchesFinder) {
  // occupancies_conflict on precomputed plan_occupancy values is the fast
  // path the IM's legacy-tracking refresh uses; it must equal the boolean
  // find_plan_conflicts computes for the pair — same-route (headway) and
  // cross-route (shared zone) cases alike, margin included.
  traffic::IntersectionConfig icfg;
  icfg.kind = traffic::IntersectionKind::kCross4;
  const auto ix = traffic::Intersection::build(icfg);
  Rng rng(105);
  int agreements_true = 0, agreements_false = 0;
  for (int iter = 0; iter < 600; ++iter) {
    const int ra = static_cast<int>(rng.uniform_int(0, 11));
    const int rb = static_cast<int>(rng.uniform_int(0, 11));
    const TravelPlan a = random_plan(rng, 1, ra, ix.route(ra).path.length());
    const TravelPlan b = random_plan(rng, 2, rb, ix.route(rb).path.length());
    const Duration margin = rng.uniform_int(0, 2) * 250;
    const bool finder = !find_plan_conflicts(ix, {&a, &b}, margin).empty();
    const bool fast = occupancies_conflict(plan_occupancy(ix, a, margin),
                                           plan_occupancy(ix, b, margin));
    ASSERT_EQ(fast, finder) << "iter " << iter << " routes " << ra << ","
                            << rb << " margin " << margin;
    (finder ? agreements_true : agreements_false)++;
  }
  // Both outcomes must occur for the agreement to mean anything.
  EXPECT_GT(agreements_true, 10);
  EXPECT_GT(agreements_false, 10);
}

TEST(PlanProperty, ScheduledBatchesStableUnderResimulation) {
  // Scheduling the same arrival sequence twice gives identical plans
  // (pure function of inputs — no hidden global state).
  traffic::IntersectionConfig icfg;
  icfg.kind = traffic::IntersectionKind::kCfi4;
  const auto ix = traffic::Intersection::build(icfg);
  traffic::ArrivalGenerator gen(ix, 90, Rng(7));
  const auto arrivals = gen.generate(60'000);
  std::vector<TravelPlan> first, second;
  for (int lap = 0; lap < 2; ++lap) {
    ReservationScheduler sched(ix);
    auto& out = lap == 0 ? first : second;
    std::uint64_t vid = 1;
    for (const auto& a : arrivals) {
      out.push_back(sched.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time,
                                   a.initial_speed_mps));
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "plan " << i;
  }
}

}  // namespace
}  // namespace nwade::aim
