// ReservationScheduler: the core safety invariant is that every batch of
// plans it emits is conflict-free under find_plan_conflicts, at every
// intersection type and demand level. Plus evacuation/recovery behaviour.
#include "aim/scheduler.h"

#include <gtest/gtest.h>

#include "aim/baseline.h"
#include "traffic/arrivals.h"

namespace nwade::aim {
namespace {

using traffic::ArrivalGenerator;
using traffic::Intersection;
using traffic::IntersectionConfig;
using traffic::IntersectionKind;

Intersection make_ix(IntersectionKind kind) {
  IntersectionConfig cfg;
  cfg.kind = kind;
  return Intersection::build(cfg);
}

TEST(Scheduler, FirstVehicleCrossesAtFullSpeed) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  const TravelPlan p = sched.schedule(VehicleId{1}, 0, {}, 0, 20.0);
  const double limit = ix.config().limits.speed_limit_mps;
  const Tick expected_entry = seconds_to_ticks(ix.route(0).core_begin / limit);
  EXPECT_EQ(p.core_entry, expected_entry);
  EXPECT_GT(p.core_exit, p.core_entry);
  // No waiting segment; cruise speed is the limit (up to tick rounding).
  EXPECT_NEAR(p.segments.front().v_mps, limit, 0.01);
}

TEST(Scheduler, ConflictingVehiclesAreSeparated) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  // Two vehicles on a conflicting pair requesting at the same instant.
  int left0 = -1, straight2 = -1;
  for (const auto& r : ix.routes()) {
    if (r.entry_leg == 0 && r.turn == traffic::Turn::kLeft) left0 = r.id;
    if (r.entry_leg == 2 && r.turn == traffic::Turn::kStraight) straight2 = r.id;
  }
  const TravelPlan a = sched.schedule(VehicleId{1}, left0, {}, 0, 20.0);
  const TravelPlan b = sched.schedule(VehicleId{2}, straight2, {}, 0, 20.0);
  EXPECT_TRUE(find_plan_conflicts(ix, {&a, &b}, 500).empty());
  // The second vehicle must have been delayed.
  EXPECT_GT(b.core_entry, a.core_entry);
}

TEST(Scheduler, SameRouteVehiclesKeepHeadway) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  const TravelPlan a = sched.schedule(VehicleId{1}, 0, {}, 0, 20.0);
  const TravelPlan b = sched.schedule(VehicleId{2}, 0, {}, 100, 20.0);
  EXPECT_TRUE(find_plan_conflicts(ix, {&a, &b}, 500).empty());
  EXPECT_GE(b.core_entry, a.core_exit);
}

// The headline invariant, swept across every intersection kind and density.
struct SweepParam {
  IntersectionKind kind;
  double vpm;
};

class ScheduleSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleSweepTest, AllPlansMutuallyConflictFree) {
  const auto ix = make_ix(GetParam().kind);
  ReservationScheduler sched(ix);
  ArrivalGenerator gen(ix, GetParam().vpm, Rng(2024));
  const auto arrivals = gen.generate(3 * 60 * 1000);

  std::vector<TravelPlan> plans;
  plans.reserve(arrivals.size());
  std::uint64_t next = 1;
  for (const auto& a : arrivals) {
    plans.push_back(
        sched.schedule(VehicleId{next++}, a.route_id, a.traits, a.time,
                       a.initial_speed_mps));
  }
  std::vector<const TravelPlan*> ptrs;
  for (const auto& p : plans) ptrs.push_back(&p);
  const auto conflicts = find_plan_conflicts(ix, ptrs, 500);
  EXPECT_TRUE(conflicts.empty())
      << conflicts.size() << " conflicts among " << plans.size() << " plans; first: "
      << (conflicts.empty()
              ? ""
              : "vehicles " + std::to_string(conflicts[0].first.value) + "," +
                    std::to_string(conflicts[0].second.value) + " zone " +
                    std::to_string(conflicts[0].zone_id));
}

TEST_P(ScheduleSweepTest, PlansRespectRequestTime) {
  const auto ix = make_ix(GetParam().kind);
  ReservationScheduler sched(ix);
  ArrivalGenerator gen(ix, GetParam().vpm, Rng(7));
  std::uint64_t next = 1;
  for (const auto& a : gen.generate(60 * 1000)) {
    const TravelPlan p =
        sched.schedule(VehicleId{next++}, a.route_id, a.traits, a.time, 20.0);
    EXPECT_EQ(p.issued_at, a.time);
    EXPECT_GT(p.core_entry, a.time);
    EXPECT_GE(p.core_exit, p.core_entry);
    // Segments start at or after the request.
    EXPECT_GE(p.segments.front().start, a.time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDensities, ScheduleSweepTest,
    ::testing::Values(SweepParam{IntersectionKind::kCross4, 20},
                      SweepParam{IntersectionKind::kCross4, 80},
                      SweepParam{IntersectionKind::kCross4, 120},
                      SweepParam{IntersectionKind::kRoundabout3, 60},
                      SweepParam{IntersectionKind::kIrregular5, 80},
                      SweepParam{IntersectionKind::kCfi4, 80},
                      SweepParam{IntersectionKind::kDdi4, 80}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = intersection_name(info.param.kind);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(static_cast<int>(info.param.vpm));
    });

TEST(Scheduler, ReleaseBeforeFreesMemory) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  for (int i = 0; i < 50; ++i) {
    sched.schedule(VehicleId{static_cast<std::uint64_t>(i + 1)}, i % 12, {},
                   i * 2000, 20.0);
  }
  const std::size_t before = sched.reservation_count();
  ASSERT_GT(before, 0u);
  sched.release_before(kTickMax);
  EXPECT_EQ(sched.reservation_count(), 0u);
}

TEST(Evacuation, VehicleHeadingIntoThreatStops) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  const auto& route = ix.route(0);
  // Threat sits on route 0's core.
  ThreatInfo threat;
  threat.position = route.path.point_at(route.core_begin + 10);
  threat.radius_m = 20;
  threat.suspect = VehicleId{99};

  ActiveVehicle v{VehicleId{1}, 0, {}, route.core_begin - 100, 15.0};
  const auto plans = sched.plan_evacuation({v}, threat, 50000);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].evacuation);
  // Final segment is a stop short of the threat.
  const auto& last = plans[0].segments.back();
  EXPECT_DOUBLE_EQ(last.v_mps, 0.0);
  const double threat_s = route.core_begin + 10;
  EXPECT_LT(last.s0, threat_s - threat.radius_m + 1e-6);
}

TEST(Evacuation, VehicleOnClearRouteContinues) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  const auto& route0 = ix.route(0);
  ThreatInfo threat;
  threat.position = route0.path.point_at(route0.core_begin);
  threat.radius_m = 15;
  threat.suspect = VehicleId{99};

  // A vehicle on an unrelated route that never comes near the threat
  // (shared exit legs put many routes close; 25 m > radius + margin).
  int clear_route = -1;
  for (const auto& r : ix.routes()) {
    const auto [dist, s] = r.path.project(threat.position);
    if (dist > threat.radius_m + 10.0) {
      clear_route = r.id;
      break;
    }
  }
  ASSERT_GE(clear_route, 0);
  ActiveVehicle v{VehicleId{2}, clear_route, {}, 10.0, 15.0};
  const auto plans = sched.plan_evacuation({v}, threat, 1000);
  ASSERT_EQ(plans.size(), 1u);
  // Keeps moving (no zero-speed final segment).
  EXPECT_GT(plans[0].segments.back().v_mps, 0.0);
}

TEST(Evacuation, SuspectGetsNoPlan) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  ThreatInfo threat;
  threat.suspect = VehicleId{7};
  ActiveVehicle suspect{VehicleId{7}, 0, {}, 50.0, 15.0};
  ActiveVehicle witness{VehicleId{8}, 3, {}, 60.0, 15.0};
  const auto plans = sched.plan_evacuation({suspect, witness}, threat, 0);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].vehicle, VehicleId{8});
}

TEST(Recovery, ReplansAllVehiclesWithoutConflicts) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler sched(ix);
  std::vector<ActiveVehicle> active;
  // Vehicles scattered along different routes, pre-core.
  for (int i = 0; i < 8; ++i) {
    active.push_back(ActiveVehicle{VehicleId{static_cast<std::uint64_t>(i + 1)},
                                   i % 12, {}, 20.0 * i, 10.0});
  }
  const auto plans = sched.plan_recovery(active, 100000);
  ASSERT_EQ(plans.size(), active.size());
  std::vector<const TravelPlan*> ptrs;
  for (const auto& p : plans) ptrs.push_back(&p);
  // Vehicles pre-core must be conflict-free; mid-core vehicles are committed
  // as-is (they are physically there), so filter to pre-core ones.
  std::vector<const TravelPlan*> pre_core;
  for (const auto* p : ptrs) {
    if (p->core_entry > 100001) pre_core.push_back(p);
  }
  EXPECT_TRUE(find_plan_conflicts(ix, pre_core, 500).empty());
  for (const auto& p : plans) {
    EXPECT_FALSE(p.evacuation);
    EXPECT_EQ(p.issued_at, 100000);
  }
}

TEST(Baseline, OnlyEntersOnGreen) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  TrafficLightScheduler lights(ix);
  ArrivalGenerator gen(ix, 80, Rng(5));
  std::uint64_t next = 1;
  for (const auto& a : gen.generate(2 * 60 * 1000)) {
    const TravelPlan p =
        lights.schedule(VehicleId{next++}, a.route_id, a.traits, a.time, 20.0);
    const int leg = ix.route(a.route_id).entry_leg;
    EXPECT_TRUE(lights.is_green(leg, p.core_entry))
        << "vehicle " << next - 1 << " entered on red (t=" << p.core_entry << ")";
  }
}

TEST(Baseline, CycleCoversAllLegs) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  TrafficLightScheduler lights(ix);
  EXPECT_EQ(lights.cycle_ms(), 4 * (12000 + 3000));
  // At any instant at most one leg is green.
  for (Tick t = 0; t < lights.cycle_ms(); t += 500) {
    int greens = 0;
    for (int leg = 0; leg < 4; ++leg) greens += lights.is_green(leg, t) ? 1 : 0;
    EXPECT_LE(greens, 1) << "t=" << t;
  }
}

TEST(Baseline, SlowerThanReservationScheduler) {
  const auto ix = make_ix(IntersectionKind::kCross4);
  ReservationScheduler aim(ix);
  TrafficLightScheduler lights(ix);
  ArrivalGenerator gen(ix, 80, Rng(11));
  const auto arrivals = gen.generate(3 * 60 * 1000);
  Tick aim_total = 0, light_total = 0;
  std::uint64_t next = 1;
  for (const auto& a : arrivals) {
    const VehicleId id{next++};
    aim_total += aim.schedule(id, a.route_id, a.traits, a.time, 20.0).core_exit - a.time;
    light_total +=
        lights.schedule(id, a.route_id, a.traits, a.time, 20.0).core_exit - a.time;
  }
  EXPECT_LT(aim_total, light_total)
      << "reservation AIM should beat fixed-cycle lights on average delay";
}

}  // namespace
}  // namespace nwade::aim
